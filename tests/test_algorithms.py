"""Structural tests for the four broadcast algorithms.

Every algorithm, on a grid of mesh sizes and sources, must produce a
schedule that covers every node exactly once, respects causality and
its port budget, uses only real channels, and matches its closed-form
step count.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AdaptiveBroadcast,
    DeterministicBroadcast,
    ExtendedDominatingNodes,
    RecursiveDoubling,
    get_algorithm,
    algorithm_names,
    validate_schedule,
)
from repro.network import Mesh
from repro.routing.turn_model import WestFirst, WestFirstPlanar

ALL = [RecursiveDoubling, ExtendedDominatingNodes, DeterministicBroadcast, AdaptiveBroadcast]

PAPER_SIZES = [(4, 4, 4), (4, 4, 16), (8, 8, 8), (8, 8, 16), (16, 16, 8)]


@pytest.mark.parametrize("cls", ALL)
@pytest.mark.parametrize("dims", PAPER_SIZES)
def test_schedule_valid_on_paper_sizes(cls, dims):
    mesh = Mesh(dims)
    algo = cls(mesh)
    for source in [(0, 0, 0), tuple(d - 1 for d in dims), tuple(d // 2 for d in dims)]:
        schedule = algo.schedule(source)
        validate_schedule(schedule, mesh, algo.ports_required)


@pytest.mark.parametrize("cls", ALL)
def test_schedule_valid_on_non_power_of_two(cls):
    mesh = Mesh((10, 10, 10))  # the 1000-node Fig. 1 point
    algo = cls(mesh)
    schedule = algo.schedule((5, 5, 5))
    validate_schedule(schedule, mesh, algo.ports_required)


@pytest.mark.parametrize("cls", ALL)
def test_schedule_valid_on_2d(cls):
    mesh = Mesh((8, 8))
    algo = cls(mesh)
    schedule = algo.schedule((3, 4))
    validate_schedule(schedule, mesh, algo.ports_required)


@pytest.mark.parametrize("cls", ALL)
def test_source_outside_topology_rejected(cls):
    algo = cls(Mesh((4, 4, 4)))
    with pytest.raises(ValueError):
        algo.schedule((9, 9, 9))


# ------------------------------------------------------------- step counts
def test_rd_step_count_is_log2_n():
    assert RecursiveDoubling(Mesh((8, 8, 8))).step_count() == 9  # log2(512)
    assert RecursiveDoubling(Mesh((16, 16, 16))).step_count() == 12
    assert RecursiveDoubling(Mesh((4, 4))).step_count() == 4


def test_rd_step_count_non_power_of_two():
    assert RecursiveDoubling(Mesh((10, 10, 10))).step_count() == 12  # 3*ceil(log2 10)


def test_edn_step_count_matches_paper_formula():
    """k + m + 4 on (4*2^k) x (4*2^k) x (4*2^m) networks."""
    for k, m in [(0, 0), (0, 2), (1, 1), (1, 2), (2, 1), (2, 2)]:
        dims = (4 * 2**k, 4 * 2**k, 4 * 2**m)
        algo = ExtendedDominatingNodes(Mesh(dims))
        assert algo.step_count() == k + m + 4, dims
        assert algo.conforming_parameters(dims) == (k, m)


def test_edn_conforming_parameters_rejections():
    f = ExtendedDominatingNodes.conforming_parameters
    assert f((8, 4, 8)) is None      # not square in xy
    assert f((10, 10, 10)) is None   # not multiple-of-4 powers
    assert f((8, 8)) is None         # wrong arity
    assert f((12, 12, 8)) is None    # 12 = 4*3, 3 not a power of two


def test_db_step_count_is_four_in_3d():
    for dims in PAPER_SIZES:
        assert DeterministicBroadcast(Mesh(dims)).step_count() == 4


def test_db_step_count_degenerate():
    assert DeterministicBroadcast(Mesh((8, 8))).step_count() == 3
    assert DeterministicBroadcast(Mesh((8, 2, 4))).step_count() == 3


def test_ab_step_count_is_three_in_3d():
    for dims in PAPER_SIZES:
        assert AdaptiveBroadcast(Mesh(dims)).step_count() == 3


def test_ab_step_count_2d():
    assert AdaptiveBroadcast(Mesh((8, 8))).step_count() == 2


@pytest.mark.parametrize("cls", ALL)
@pytest.mark.parametrize("dims", PAPER_SIZES)
def test_built_steps_match_closed_form(cls, dims):
    algo = cls(Mesh(dims))
    assert algo.schedule((1, 1, 1)).num_steps == algo.step_count()


# --------------------------------------------------------------- RD details
def test_rd_all_sends_are_unicast():
    schedule = RecursiveDoubling(Mesh((8, 8))).schedule((0, 0))
    for _, send in schedule.all_sends():
        assert send.fanout == 1


def test_rd_one_send_per_node_per_step():
    schedule = RecursiveDoubling(Mesh((8, 8, 8))).schedule((0, 0, 0))
    assert schedule.max_concurrent_sends() == 1


def test_rd_doubles_coverage_on_power_of_two_line():
    schedule = RecursiveDoubling(Mesh((8,))).schedule((0,))
    covered = 1
    for step in schedule.steps:
        covered += len(step.deliveries())
        assert covered <= 2 ** step.index
    assert covered == 8


# -------------------------------------------------------------- EDN details
def test_edn_requires_mesh_2d_or_3d():
    with pytest.raises(ValueError):
        ExtendedDominatingNodes(Mesh((4, 4, 4, 4)))


def test_edn_max_three_sends_per_step():
    schedule = ExtendedDominatingNodes(Mesh((16, 16, 8))).schedule((3, 3, 3))
    assert schedule.max_concurrent_sends() <= 3


def test_edn_all_sends_are_unicast():
    schedule = ExtendedDominatingNodes(Mesh((8, 8, 8))).schedule((0, 0, 0))
    for _, send in schedule.all_sends():
        assert send.fanout == 1


# --------------------------------------------------------------- DB details
def test_db_rejects_thin_meshes():
    with pytest.raises(ValueError):
        DeterministicBroadcast(Mesh((1, 8, 8)))


def test_db_step1_targets_opposite_corners():
    mesh = Mesh((8, 8, 8))
    schedule = DeterministicBroadcast(mesh).schedule((3, 3, 3))
    step1 = schedule.steps[0]
    targets = {d for send in step1.sends for d in send.deliveries}
    assert targets == {(0, 0, 0), (7, 7, 7)}


def test_db_source_at_corner_sends_once_in_step1():
    schedule = DeterministicBroadcast(Mesh((4, 4, 4))).schedule((0, 0, 0))
    assert len(schedule.steps[0].sends) == 1


def test_db_most_nodes_arrive_in_last_step():
    """The partition balance behind DB's low CV (paper §3.2)."""
    schedule = DeterministicBroadcast(Mesh((8, 8, 8))).schedule((0, 0, 0))
    receive = schedule.receive_step()
    last = schedule.num_steps
    frac_last = sum(1 for s in receive.values() if s == last) / len(receive)
    assert frac_last > 0.5


def test_db_uses_dor_paths():
    schedule = DeterministicBroadcast(Mesh((6, 6, 6))).schedule((2, 3, 4))
    mesh = Mesh((6, 6, 6))
    for _, send in schedule.all_sends():
        assert send.path is not None
        assert send.path.is_minimal(mesh)


# --------------------------------------------------------------- AB details
def test_ab_step1_targets_nearest_and_opposite_plane_corners():
    mesh = Mesh((8, 8, 8))
    schedule = AdaptiveBroadcast(mesh).schedule((1, 6, 4))
    step1 = schedule.steps[0]
    targets = {d for send in step1.sends for d in send.deliveries}
    assert targets == {(0, 7, 4), (7, 0, 4)}


def test_ab_adaptive_sends_only_in_early_steps():
    schedule = AdaptiveBroadcast(Mesh((8, 8, 8))).schedule((3, 3, 3))
    step3 = schedule.steps[-1]
    assert all(send.path is not None for send in step3.sends)
    assert all(send.is_adaptive for send in schedule.steps[0].sends)


def test_ab_third_step_paths_are_long():
    """AB 'uses longer paths in its third step' (paper §3.2)."""
    mesh = Mesh((8, 8, 8))
    ab_sched = AdaptiveBroadcast(mesh).schedule((0, 0, 0))
    db_sched = DeterministicBroadcast(mesh).schedule((0, 0, 0))
    ab_longest = max(s.path.hop_count for _, s in ab_sched.all_sends() if s.path)
    db_longest = max(s.path.hop_count for _, s in db_sched.all_sends())
    assert ab_longest > db_longest


WEST = (0, -1)


def _directions(nodes):
    out = []
    for a, b in zip(nodes, nodes[1:]):
        for axis, (x, y) in enumerate(zip(a, b)):
            if x != y:
                out.append((axis, 1 if y > x else -1))
    return out


@pytest.mark.parametrize("dims", [(8, 8, 4), (5, 7, 3), (8, 8)])
def test_ab_fixed_paths_are_west_first_legal(dims):
    """Step-3 worms never turn into the west direction mid-path."""
    mesh = Mesh(dims)
    source = tuple(d // 2 for d in dims)
    schedule = AdaptiveBroadcast(mesh).schedule(source)
    for _, send in schedule.all_sends():
        if send.path is None:
            continue
        dirs = _directions(send.path.nodes)
        for before, after in zip(dirs, dirs[1:]):
            if after == WEST:
                assert before == WEST, f"turn into west on {send.path}"


def test_ab_max_destinations_split():
    mesh = Mesh((8, 8, 4))
    ab = AdaptiveBroadcast(mesh, max_destinations_per_path=8)
    schedule = ab.schedule((0, 0, 0))
    validate_schedule(schedule, mesh, ports=2, strict_ports=False)
    step3 = schedule.steps[-1]
    assert all(send.fanout <= 8 for send in step3.sends)
    # More worms than the unlimited variant.
    unlimited = AdaptiveBroadcast(mesh).schedule((0, 0, 0))
    assert schedule.total_sends() > unlimited.total_sends()


def test_ab_invalid_max_destinations():
    with pytest.raises(ValueError):
        AdaptiveBroadcast(Mesh((8, 8)), max_destinations_per_path=0)


def test_ab_make_routing_dimensionality():
    assert isinstance(AdaptiveBroadcast.make_routing(Mesh((4, 4, 4))), WestFirstPlanar)
    assert isinstance(AdaptiveBroadcast.make_routing(Mesh((4, 4))), WestFirst)


# ---------------------------------------------------------------- registry
def test_registry_round_trip():
    assert algorithm_names() == ["RD", "EDN", "DB", "AB"]
    assert get_algorithm("db") is DeterministicBroadcast
    assert get_algorithm("AB") is AdaptiveBroadcast
    with pytest.raises(KeyError):
        get_algorithm("nope")


# ----------------------------------------------------- property-based sweep
@given(
    dims=st.tuples(st.integers(2, 6), st.integers(2, 6), st.integers(1, 6)),
    name=st.sampled_from(["RD", "EDN", "DB", "AB"]),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_any_algorithm_any_mesh_any_source(dims, name, data):
    mesh = Mesh(dims)
    source = data.draw(
        st.tuples(*[st.integers(0, d - 1) for d in dims]), label="source"
    )
    algo = get_algorithm(name)(mesh)
    schedule = algo.schedule(source)
    validate_schedule(schedule, mesh, algo.ports_required)
    assert schedule.num_steps == algo.step_count()
    # The step count never exceeds RD's log2 bound by more than EDN's
    # constant: a loose global sanity bound.
    assert schedule.num_steps <= sum(
        math.ceil(math.log2(d)) for d in dims if d > 1
    ) + 4
