"""Tests for result export (`repro.experiments.export`)."""

import math

import pytest

from repro.experiments.export import (
    load_csv_rows,
    load_json_rows,
    rows_to_csv,
    rows_to_json,
    save_rows,
)
from repro.experiments.fig1 import Fig1Row


def sample_rows():
    return [
        Fig1Row(
            algorithm="DB",
            dims=(4, 4, 4),
            num_nodes=64,
            mean_latency_us=7.23,
            std_latency_us=0.1,
            samples=5,
        ),
        Fig1Row(
            algorithm="AB",
            dims=(8, 8, 8),
            num_nodes=512,
            mean_latency_us=5.54,
            std_latency_us=0.05,
            samples=5,
        ),
    ]


def test_json_round_trip():
    text = rows_to_json(sample_rows())
    rows = load_json_rows(text)
    assert len(rows) == 2
    assert rows[0]["algorithm"] == "DB"
    assert rows[0]["dims"] == "4x4x4"
    assert rows[0]["mean_latency_us"] == pytest.approx(7.23)


def test_json_handles_inf_and_nan():
    text = rows_to_json([{"a": math.inf, "b": math.nan, "c": -math.inf}])
    row = load_json_rows(text)[0]
    assert row["a"] == math.inf
    assert math.isnan(row["b"])
    assert row["c"] == -math.inf


def test_load_json_rejects_non_array():
    with pytest.raises(ValueError):
        load_json_rows('{"a": 1}')


def test_csv_output():
    text = rows_to_csv(sample_rows())
    lines = text.strip().splitlines()
    assert lines[0].startswith("algorithm,dims,num_nodes")
    assert "DB,4x4x4,64" in lines[1]
    assert len(lines) == 3


def test_csv_round_trip():
    rows = load_csv_rows(rows_to_csv(sample_rows()))
    assert len(rows) == 2
    assert rows[0]["algorithm"] == "DB"
    assert rows[0]["dims"] == "4x4x4"
    assert rows[0]["num_nodes"] == 64
    assert rows[0]["mean_latency_us"] == pytest.approx(7.23)


def test_csv_round_trip_matches_json_round_trip():
    rows = sample_rows()
    assert load_csv_rows(rows_to_csv(rows)) == load_json_rows(rows_to_json(rows))


def test_csv_round_trip_bool_and_none_match_json():
    rows = [{"saturated": False, "note": None, "x": 1.5, "ok": True}]
    loaded = load_csv_rows(rows_to_csv(rows))
    assert loaded[0]["saturated"] is False
    assert loaded[0]["note"] is None
    assert loaded[0]["ok"] is True
    assert loaded == load_json_rows(rows_to_json(rows))


def test_csv_round_trip_real_traffic_rows():
    from repro.experiments import run_traffic_sweep

    rows = run_traffic_sweep(
        "fig3", scale="smoke", seed=0, loads=[2.0], algorithms=["AB"]
    )
    loaded = load_csv_rows(rows_to_csv(rows))
    assert loaded == load_json_rows(rows_to_json(rows))
    assert loaded[0]["saturated"] in (True, False)


def test_csv_handles_inf_and_nan():
    text = rows_to_csv([{"a": math.inf, "b": math.nan, "c": -math.inf}])
    row = load_csv_rows(text)[0]
    assert row["a"] == math.inf
    assert math.isnan(row["b"])
    assert row["c"] == -math.inf


def test_csv_empty():
    assert rows_to_csv([]) == ""
    assert load_csv_rows("") == []


def test_save_rows_json_and_csv(tmp_path):
    json_path = save_rows(sample_rows(), tmp_path / "out.json")
    csv_path = save_rows(sample_rows(), tmp_path / "out.csv")
    assert json_path.read_text().startswith("[")
    assert "algorithm" in csv_path.read_text()


def test_save_rows_unknown_format(tmp_path):
    with pytest.raises(ValueError):
        save_rows(sample_rows(), tmp_path / "out.xlsx")


def test_export_real_experiment_rows(tmp_path):
    from repro.experiments import run_cv_table

    rows = run_cv_table("AB", scale="smoke", seed=0)
    path = save_rows(rows, tmp_path / "table2.json")
    loaded = load_json_rows(path.read_text())
    assert len(loaded) == len(rows)
    assert {r["baseline"] for r in loaded} == {"RD", "EDN"}
