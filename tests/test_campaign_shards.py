"""Sharded simulation units: planning, merge determinism, heartbeats.

The contract under test (see `repro/campaigns/shards.py`):

* shard planning is a pure function of the parent spec — stable
  content-hashed shard ids, slices that conserve the retained batch
  budget;
* however the shards are executed — inline, worker pool, resumed from
  a store, split across pools — the merged parent record is byte
  identical;
* ``shards=1`` touches nothing: hashes and results are the unsharded
  protocol's;
* the lease heartbeat keeps a long unit's lease alive under a TTL far
  shorter than the unit.
"""

import threading
import time

import pytest

from repro.campaigns import (
    CampaignSpec,
    SqliteStore,
    UnitSpec,
    execute_unit,
    freeze_params,
    merge_shard_records,
    planned_shards,
    run_campaign,
    shard_specs,
    unit_shards,
)
from repro.campaigns.pool import estimate_unit_cost, lease_heartbeat
from repro.campaigns.shards import (
    BROADCAST_CELL_KIND,
    BROADCAST_SHARD_KIND,
    SHARD_KIND,
    shard_batch_slices,
    shard_source_slices,
)
from repro.campaigns.store import JsonlStore
from repro.cli import main
from repro.experiments.runner import campaign_for
from repro.experiments.traffic_sweep import run_traffic_sweep, traffic_campaign


def traffic_parent(shards=4, **overrides):
    params = dict(
        broadcast_fraction=0.1,
        batch_size=8,
        num_batches=5,
        discard=1,
        max_sim_time_us=30_000.0,
        shards=shards if shards > 1 else None,
    )
    params.update(overrides.pop("params", {}))
    fields = dict(
        experiment="fig3",
        kind="traffic",
        algorithm="DB",
        dims=(4, 4, 4),
        length_flits=32,
        seed=0,
        load=2.0,
        params=freeze_params(**params),
    )
    fields.update(overrides)
    return UnitSpec(**fields)


# ------------------------------------------------------------- planning
def test_shard_slices_conserve_retained_budget():
    assert shard_batch_slices(21, 1, 4) == [5, 5, 5, 5]
    assert shard_batch_slices(21, 1, 3) == [7, 7, 6]
    assert shard_batch_slices(5, 1, 4) == [1, 1, 1, 1]
    for num_batches, discard, shards in [(21, 1, 4), (21, 1, 20), (9, 2, 3)]:
        assert sum(shard_batch_slices(num_batches, discard, shards)) == (
            num_batches - discard
        )
    with pytest.raises(ValueError, match="--shards"):
        shard_batch_slices(5, 1, 5)


def test_shard_specs_are_stable_pure_functions():
    parent = traffic_parent(shards=4)
    plan_a, plan_b = shard_specs(parent), shard_specs(parent)
    assert [s.unit_hash for s in plan_a] == [s.unit_hash for s in plan_b]
    assert len(plan_a) == 4
    for k, shard in enumerate(plan_a):
        assert shard.kind == SHARD_KIND
        assert shard.shard_index == k
        assert shard.param("shards") is None  # sibling count not hashed
        assert shard.param("num_batches") == 1 + 1  # slice + own discard
    assert len({s.unit_hash for s in plan_a}) == 4


def test_overlapping_decompositions_share_shard_hashes():
    # 21 batches split 4 ways and 11 batches split 2 ways both give
    # shards with a 5-batch retained slice — the same simulation, so
    # the same content hash (cross-decomposition store reuse).
    wide = traffic_parent(shards=4, params={"num_batches": 21})
    narrow = traffic_parent(shards=2, params={"num_batches": 11})
    wide_hashes = [s.unit_hash for s in shard_specs(wide)]
    narrow_hashes = [s.unit_hash for s in shard_specs(narrow)]
    assert wide_hashes[:2] == narrow_hashes


def test_shards_equal_one_leaves_unit_untouched():
    plain = traffic_parent(shards=1)
    assert unit_shards(plain) == 1
    assert plain.param("shards") is None  # hash identical to the seed grid
    with pytest.raises(ValueError, match="no sharding"):
        shard_specs(plain)


def test_shard_cost_estimate_is_per_shard():
    parent = traffic_parent(shards=4, params={"num_batches": 21})
    shard = shard_specs(parent)[0]
    assert estimate_unit_cost(shard) < estimate_unit_cost(parent)


# ------------------------------------------------- execution determinism
def test_sharded_execution_paths_are_byte_identical(tmp_path):
    parent = traffic_parent(shards=4)
    spec = CampaignSpec(name="shard-diff", seed=0, units=(parent,))

    inline = execute_unit(parent)  # the definition: serial shards + merge
    serial = run_campaign(spec, workers=1)[0]
    parallel = run_campaign(spec, workers=4)[0]
    assert serial.result == inline.result == parallel.result

    # resumed from a store that holds only the shard records
    # ("interrupted before the merge"): no simulation re-runs, the
    # merge is re-derived.
    store = JsonlStore(tmp_path / "mid-merge.jsonl")
    for shard in shard_specs(parent):
        store.append(execute_unit(shard))
    resumed = run_campaign(spec, workers=1, store=store)[0]
    assert resumed.result == inline.result
    merged = store.get(parent.unit_hash)
    assert merged is not None and merged.result == inline.result


def test_merge_rejects_missing_or_duplicate_shards():
    parent = traffic_parent(shards=2)
    records = [execute_unit(s) for s in shard_specs(parent)]
    merge_shard_records(parent, records)  # complete set is fine
    with pytest.raises(ValueError, match="expected 0..1"):
        merge_shard_records(parent, records[:1])
    with pytest.raises(ValueError, match="expected 0..1"):
        merge_shard_records(parent, [records[0], records[0]])


def test_quick_fig3_row_sharded_vs_serial_golden_diff():
    """The acceptance diff: one quick-scale fig3 point, --shards 4,
    parallel workers vs the serial run — byte-identical rows."""
    kwargs = dict(loads=[1.0], algorithms=["DB"], scale="quick", shards=4)
    serial = run_traffic_sweep("fig3", workers=1, **kwargs)
    parallel = run_traffic_sweep("fig3", workers=4, **kwargs)
    assert serial == parallel  # dataclass equality: every float equal
    [row] = serial
    assert row.operations > 0 and row.mean_latency_us > 0


def test_sharded_campaign_spec_declares_parents_only():
    spec = traffic_campaign("fig3", scale="smoke", shards=2, loads=[1.0, 2.0])
    assert all(u.kind == "traffic" for u in spec.units)
    assert all(unit_shards(u) == 2 for u in spec.units)
    # same grid, different shard count → different campaign identity
    other = traffic_campaign("fig3", scale="smoke", shards=1, loads=[1.0, 2.0])
    assert spec.campaign_hash != other.campaign_hash
    assert spec.name == other.name  # shares the default store location


def test_two_pools_share_one_sharded_point(tmp_path):
    """Two pools on one sqlite store split the shards; exactly one
    merged parent record, identical to the single-pool result."""
    parent = traffic_parent(shards=4)
    spec = CampaignSpec(name="two-pools", seed=0, units=(parent,))
    reference = execute_unit(parent)

    store = SqliteStore(tmp_path / "pools.sqlite")
    first = run_campaign(spec, workers=2, store=store)
    second = run_campaign(spec, workers=2, store=store)  # full resume
    assert first[0].result == second[0].result == reference.result


# ------------------------------------------------------------ heartbeats
def test_lease_heartbeat_outlives_short_ttl(tmp_path):
    store = SqliteStore(tmp_path / "leases.sqlite")
    ttl = 0.3
    assert store.try_claim("unit-a", "worker-1", ttl_s=ttl)
    with lease_heartbeat(store, "unit-a", "worker-1", ttl_s=ttl):
        time.sleep(3 * ttl)  # far beyond the TTL
        # the lease must still be live and still ours
        assert "unit-a" in store.leased_hashes()
        assert not store.try_claim("unit-a", "peer:0:deadbeef", ttl_s=ttl)
    store.release("unit-a", "worker-1")
    assert store.try_claim("unit-a", "peer:0:deadbeef", ttl_s=ttl)


def test_lease_heartbeat_noop_without_lease_support(tmp_path):
    store = JsonlStore(tmp_path / "plain.jsonl")
    with lease_heartbeat(store, "unit-a", "worker-1", ttl_s=0.1):
        time.sleep(0.05)  # nothing to assert beyond "does not blow up"


# ------------------------------------------------------------------- CLI
def test_cli_status_reports_shard_progress(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    spec = traffic_campaign("fig3", scale="smoke", shards=2, loads=[4.0])
    [parent] = [u for u in spec.units if u.algorithm == "DB"]
    store = JsonlStore(tmp_path / "campaigns" / f"{spec.name}.jsonl")
    # land exactly one shard of the DB point
    store.append(execute_unit(shard_specs(parent)[0]))

    assert main(["campaign", "status", "fig3", "--scale", "smoke",
                 "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "1/2 shards, 1 to run" in out

    # land the second shard but not the merge → merge pending
    store.append(execute_unit(shard_specs(parent)[1]))
    assert main(["campaign", "status", "fig3", "--scale", "smoke",
                 "--shards", "2"]) == 0
    assert "2/2 shards, merge pending" in capsys.readouterr().out


# ------------------------------------------------------- broadcast cells
def broadcast_cell(sources=5, barrier=False, **overrides):
    fields = dict(
        experiment="fig1",
        kind=BROADCAST_CELL_KIND,
        algorithm="DB",
        dims=(4, 4, 4),
        length_flits=64,
        seed=0,
        params=freeze_params(
            sources_count=sources,
            startup_latency=1.5,
            barrier=barrier or None,
        ),
    )
    fields.update(overrides)
    return UnitSpec(**fields)


def test_broadcast_cell_planning_is_pure():
    cell = broadcast_cell(sources=5)
    plan_a, plan_b = shard_specs(cell, 3), shard_specs(cell, 3)
    assert [s.unit_hash for s in plan_a] == [s.unit_hash for s in plan_b]
    assert [
        (s.param("source_offset"), s.param("source_count")) for s in plan_a
    ] == [(0, 2), (2, 2), (4, 1)]
    for k, shard in enumerate(plan_a):
        assert shard.kind == BROADCAST_SHARD_KIND
        assert shard.shard_index == k
        assert shard.param("sources_count") is None
    assert shard_source_slices(5, 3) == [(0, 2), (2, 2), (4, 1)]
    assert sum(c for _, c in shard_source_slices(40, 7)) == 40
    with pytest.raises(ValueError, match="--shards"):
        shard_source_slices(2, 3)
    with pytest.raises(ValueError, match="fan-out"):
        shard_specs(cell)  # a cell has no hashed fan-out to default to


def test_broadcast_cell_hash_is_fan_out_free():
    """The fan-out is work division, not protocol: requesting 4, 5 or
    'auto' shards declares the *same* cell units, so any pool's merged
    record satisfies any other pool's campaign."""
    from repro.experiments.common import broadcast_units

    grids = [
        broadcast_units(
            "fig1", [(4, 4, 4)], ["DB"], 64, "quick", 0, shards=shards
        )
        for shards in (4, 5, "auto")
    ]
    hashes = [[u.unit_hash for u in grid] for grid in grids]
    assert hashes[0] == hashes[1] == hashes[2]
    assert all(u.kind == BROADCAST_CELL_KIND for grid in grids for u in grid)
    # while shards=1 keeps the PR-4 per-replication protocol, untouched
    plain = broadcast_units("fig1", [(4, 4, 4)], ["DB"], 64, "quick", 0)
    assert all(u.kind == "broadcast" for u in plain)
    assert len(plain) == 5  # quick scale: one unit per source


def test_planned_shards_resolution():
    cell = broadcast_cell(sources=5)
    assert planned_shards(cell, requested=3) == 3
    assert planned_shards(cell, requested=8) == 5  # capped by sources
    assert planned_shards(cell, requested=1) == 1
    assert planned_shards(cell, requested="auto", workers=4) == 4
    assert planned_shards(cell, requested="auto", workers=1) == 1
    # traffic parents are self-describing; the request is ignored
    parent = traffic_parent(shards=4)
    assert planned_shards(parent, requested=2) == 4
    assert planned_shards(parent, requested="auto") == 4
    # per-replication broadcast units never shard
    plain = broadcast_cell(kind="broadcast", params=freeze_params())
    assert planned_shards(plain, requested="auto", workers=8) == 1


def test_broadcast_cell_execution_paths_are_byte_identical(tmp_path):
    """The cell acceptance diff: inline definition vs every fan-out,
    serial or pooled — and a mid-merge resume — all byte-identical."""
    cell = broadcast_cell(sources=5, barrier=True)
    spec = CampaignSpec(name="cell-diff", seed=0, units=(cell,))

    inline = execute_unit(cell)  # the definition: all sources in order
    serial_k3 = run_campaign(spec, workers=1, shards=3)[0]
    parallel_k5 = run_campaign(spec, workers=4, shards=5)[0]
    assert serial_k3.result == inline.result == parallel_k5.result

    # resumed from a store holding only a 2-way plan's shard records
    # ("interrupted before the merge"): the merge is re-derived from a
    # *different* fan-out than the request — still byte-identical.
    store = JsonlStore(tmp_path / "cell-mid-merge.jsonl")
    for shard in shard_specs(cell, 2):
        store.append(execute_unit(shard))
    resumed = run_campaign(spec, workers=1, store=store, shards=2)[0]
    assert resumed.result == inline.result
    merged = store.get(cell.unit_hash)
    assert merged is not None and merged.result == inline.result


def _fig1_rows(shards, workers, store=None):
    from repro.experiments.common import broadcast_units, campaign, run_units

    units = broadcast_units(
        "fig1", [(4, 4, 4), (8, 8, 8)], ["RD", "DB"], 100, "quick", 0,
        startup_latency=1.5, shards=shards,
    )
    spec = campaign("fig1", units, "quick", 0)
    return run_units(
        "fig1", spec, workers=workers, store=store, shards=shards
    )


def test_quick_fig1_rows_sharded_vs_serial_golden_diff(tmp_path, monkeypatch):
    """The acceptance diff: quick-scale fig1 rows at --shards 4
    --workers 4 and at --shards auto, byte-identical to the serial
    unsharded run."""
    monkeypatch.chdir(tmp_path)  # no ambient campaigns/cost_model.json
    serial = _fig1_rows(shards=1, workers=1)
    sharded = _fig1_rows(shards=4, workers=4)
    auto = _fig1_rows(shards="auto", workers=2)
    assert serial == sharded  # dataclass equality: every float equal
    assert serial == auto
    assert all(row.samples == 5 for row in serial)


def test_quick_fig2_rows_sharded_vs_serial_golden_diff(monkeypatch, tmp_path):
    """Same diff for a barrier-twin grid (fig2): each source's
    event-driven run and its barrier twin shard as a pair."""
    from repro.experiments.common import broadcast_units, campaign, run_units

    monkeypatch.chdir(tmp_path)

    def rows(shards, workers):
        units = broadcast_units(
            "fig2", [(4, 4, 4), (4, 4, 16)], ["RD", "DB"], 100, "quick", 0,
            barrier=True, startup_latency=1.5, shards=shards,
        )
        spec = campaign("fig2", units, "quick", 0)
        return run_units("fig2", spec, workers=workers, shards=shards)

    serial = rows(shards=1, workers=1)
    sharded = rows(shards=4, workers=4)
    auto = rows(shards="auto", workers=2)
    assert serial == sharded
    assert serial == auto
    assert all(row.mean_cv_barrier > 0 for row in serial)


def test_two_pools_share_one_broadcast_cell(tmp_path):
    """Two pools with *different* fan-out requests on one sqlite store
    still converge on one merged cell record, byte-identical to the
    single-pool result (the cell's hash is fan-out-free)."""
    cell = broadcast_cell(sources=5)
    spec = CampaignSpec(name="cell-pools", seed=0, units=(cell,))
    reference = execute_unit(cell)

    store = SqliteStore(tmp_path / "cell-pools.sqlite")
    first = run_campaign(spec, workers=2, store=store, shards=5)
    second = run_campaign(spec, workers=2, store=store, shards=2)
    assert first[0].result == second[0].result == reference.result


def test_traffic_auto_resolves_at_declaration(tmp_path, monkeypatch):
    """Traffic `auto` is protocol, so it pins per-point shard counts
    into the hashed params when the grid is declared — identically on
    every redeclaration — and stays unsharded without model evidence."""
    import math

    from repro.campaigns.costmodel import CostModel

    monkeypatch.chdir(tmp_path)
    kwargs = dict(scale="smoke", shards="auto", loads=[1.0],
                  algorithms=["DB"])
    [plain] = traffic_campaign("fig3", **kwargs).units
    assert unit_shards(plain) == 1  # no fitted model, no protocol change

    # A model predicting 5 s per observation makes every shard worth
    # its budget; smoke retains 2 batches, so auto caps at 2.
    CostModel(
        weights=(math.log(5.0), 0.0, 0.0, 0.0, 1.0, 0.0, 0.0),
        samples=8,
        r_squared=1.0,
    ).save()
    spec = traffic_campaign("fig3", **kwargs)
    [parent] = spec.units
    assert unit_shards(parent) == 2
    # status/aggregate redeclare the grid later: identical hashes.
    assert traffic_campaign("fig3", **kwargs).unit_hashes() == (
        spec.unit_hashes()
    )


def test_cli_shards_flag_rejects_junk(capsys):
    for bad in ("0", "-2", "bogus"):
        with pytest.raises(SystemExit):
            main(["fig1", "--shards", bad])
        assert "positive count" in capsys.readouterr().err


# ----------------------------------------------------- failure-path leases
def test_lease_heartbeat_stops_cleanly_when_shard_raises(
    tmp_path, monkeypatch
):
    """A shard runner that raises mid-execution must not leave the
    lease-heartbeat daemon running nor the shard's lease held."""
    import repro.campaigns.units  # noqa: F401 — register built-in runners
    from repro.campaigns import pool as pool_mod

    def boom(spec):
        raise RuntimeError("shard exploded")

    monkeypatch.setitem(pool_mod._UNIT_RUNNERS, SHARD_KIND, boom)
    parent = traffic_parent(shards=2)
    spec = CampaignSpec(name="boom", seed=0, units=(parent,))
    store = SqliteStore(tmp_path / "boom.sqlite")

    def heartbeats():
        return [
            t for t in threading.enumerate()
            if t.name.startswith("lease-heartbeat")
        ]

    with pytest.raises(RuntimeError, match="shard exploded"):
        # max_failures=0 = strict fail-fast: the first raising shard
        # propagates instead of entering the retry/quarantine path.
        run_campaign(spec, workers=1, store=store, max_failures=0)
    deadline = time.time() + 5.0
    while heartbeats() and time.time() < deadline:
        time.sleep(0.01)
    assert heartbeats() == []
    assert store.leased_hashes() == set()  # released on the failure path


# ------------------------------------------------------ merge idempotence
class _PeerMergedStore(JsonlStore):
    """Simulates the racing-pool interleaving: the parent's merged
    record lands (via a peer) *after* this pool's startup snapshot, so
    the snapshot misses it but point lookups see it."""

    def __init__(self, path, hidden_hash):
        super().__init__(path)
        self._hidden = hidden_hash
        self._scans = 0

    def records(self):
        records = super().records()
        if self._scans == 0:
            records.pop(self._hidden, None)
        self._scans += 1
        return records


def test_second_pool_does_not_duplicate_a_peer_merged_parent(
    tmp_path, capsys, monkeypatch
):
    """Satellite fix: a merged parent re-observed by a second pool must
    be adopted, not re-merged-and-re-appended — the store keeps exactly
    one parent record and `campaign status` counts the unit once."""
    monkeypatch.chdir(tmp_path)
    spec = traffic_campaign("fig3", scale="smoke", shards=2, loads=[1.0],
                            algorithms=["DB"])
    [parent] = spec.units
    path = tmp_path / "campaigns" / f"{spec.name}.jsonl"
    seed_store = JsonlStore(path)
    for shard in shard_specs(parent):
        seed_store.append(execute_unit(shard))
    merged = merge_shard_records(
        parent, [execute_unit(s) for s in shard_specs(parent)]
    )
    seed_store.append(merged)  # the peer pool's merge

    def parent_lines():
        return sum(
            1 for line in path.read_text().splitlines()
            if f'"{parent.unit_hash}"' in line
        )

    assert parent_lines() == 1
    store = _PeerMergedStore(path, parent.unit_hash)
    records = run_campaign(spec, workers=1, store=store)
    assert records[0].result == merged.result
    assert parent_lines() == 1  # adopted, not re-appended

    # The full fig3 grid has 28 points; exactly the merged one counts
    # complete — once — and it gets no shard-progress line.
    assert main(["campaign", "status", "fig3", "--scale", "smoke",
                 "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "1/28 units complete" in out
    assert "fig3/DB@8x8x8 L=32 load=1 r0" not in out


def test_cli_status_reports_broadcast_cell_progress(
    capsys, monkeypatch, tmp_path
):
    """Broadcast grids shard now: a fixed --shards K prints per-cell
    shard progress, and --shards auto (whose plan is whatever the
    executing pools picked) infers progress from the stored shard
    records."""
    monkeypatch.chdir(tmp_path)
    spec = campaign_for("fig1", "smoke", 0, shards=2)
    [cell] = [
        u for u in spec.units
        if u.algorithm == "DB" and u.dims == (4, 4, 4)
    ]
    store = JsonlStore(tmp_path / "campaigns" / f"{spec.name}.jsonl")
    store.append(execute_unit(shard_specs(cell, 2)[0]))

    assert main(["campaign", "status", "fig1", "--scale", "smoke",
                 "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "0/16 units complete" in out
    assert "fig1/DB@4x4x4 L=100 r0: 1/2 shards, 1 to run" in out

    # auto has no pre-agreed fan-out; the landed shard's slice is
    # attributed to its cell through the store.  A slice from a
    # larger-scale plan sharing the store (same cell key, but it
    # reaches past this scale's replication count) must not inflate
    # the coverage.
    quick_cell = broadcast_cell(
        experiment="fig1", algorithm="DB", dims=(4, 4, 4),
        length_flits=100, sources=5,
        params=freeze_params(sources_count=5, startup_latency=1.5),
    )
    store.append(execute_unit(shard_specs(quick_cell, 2)[0]))  # 0..3
    assert main(["campaign", "status", "fig1", "--scale", "smoke",
                 "--shards", "auto"]) == 0
    out = capsys.readouterr().out
    assert "fig1/DB@4x4x4 L=100 r0: 1/2 sources in 1 auto shard(s)" in out
    assert "1 sources to run" in out

    # Shards of *mixed* abandoned plans overlap; coverage is the
    # interval union of distinct sources, never a double count.
    [cell5] = [
        u for u in campaign_for("fig1", "quick", 0, shards=2).units
        if u.algorithm == "DB" and u.dims == (4, 4, 4)
    ]
    store5 = JsonlStore(
        tmp_path / "campaigns" / "fig1-quick-s0.jsonl"
    )
    for shard in shard_specs(cell5, 3)[:2]:  # covers sources 0..4
        store5.append(execute_unit(shard))
    store5.append(execute_unit(shard_specs(cell5, 2)[0]))  # covers 0..3
    assert main(["campaign", "status", "fig1", "--scale", "quick",
                 "--shards", "auto"]) == 0
    out = capsys.readouterr().out
    assert "fig1/DB@4x4x4 L=100 r0: 4/5 sources in 3 auto shard(s)" in out
    assert "1 sources to run" in out
