"""Sharded simulation units: planning, merge determinism, heartbeats.

The contract under test (see `repro/campaigns/shards.py`):

* shard planning is a pure function of the parent spec — stable
  content-hashed shard ids, slices that conserve the retained batch
  budget;
* however the shards are executed — inline, worker pool, resumed from
  a store, split across pools — the merged parent record is byte
  identical;
* ``shards=1`` touches nothing: hashes and results are the unsharded
  protocol's;
* the lease heartbeat keeps a long unit's lease alive under a TTL far
  shorter than the unit.
"""

import time

import pytest

from repro.campaigns import (
    CampaignSpec,
    SqliteStore,
    UnitSpec,
    execute_unit,
    freeze_params,
    merge_shard_records,
    run_campaign,
    shard_specs,
    unit_shards,
)
from repro.campaigns.pool import estimate_unit_cost, lease_heartbeat
from repro.campaigns.shards import SHARD_KIND, shard_batch_slices
from repro.campaigns.store import JsonlStore
from repro.cli import main
from repro.experiments.traffic_sweep import run_traffic_sweep, traffic_campaign


def traffic_parent(shards=4, **overrides):
    params = dict(
        broadcast_fraction=0.1,
        batch_size=8,
        num_batches=5,
        discard=1,
        max_sim_time_us=30_000.0,
        shards=shards if shards > 1 else None,
    )
    params.update(overrides.pop("params", {}))
    fields = dict(
        experiment="fig3",
        kind="traffic",
        algorithm="DB",
        dims=(4, 4, 4),
        length_flits=32,
        seed=0,
        load=2.0,
        params=freeze_params(**params),
    )
    fields.update(overrides)
    return UnitSpec(**fields)


# ------------------------------------------------------------- planning
def test_shard_slices_conserve_retained_budget():
    assert shard_batch_slices(21, 1, 4) == [5, 5, 5, 5]
    assert shard_batch_slices(21, 1, 3) == [7, 7, 6]
    assert shard_batch_slices(5, 1, 4) == [1, 1, 1, 1]
    for num_batches, discard, shards in [(21, 1, 4), (21, 1, 20), (9, 2, 3)]:
        assert sum(shard_batch_slices(num_batches, discard, shards)) == (
            num_batches - discard
        )
    with pytest.raises(ValueError, match="--shards"):
        shard_batch_slices(5, 1, 5)


def test_shard_specs_are_stable_pure_functions():
    parent = traffic_parent(shards=4)
    plan_a, plan_b = shard_specs(parent), shard_specs(parent)
    assert [s.unit_hash for s in plan_a] == [s.unit_hash for s in plan_b]
    assert len(plan_a) == 4
    for k, shard in enumerate(plan_a):
        assert shard.kind == SHARD_KIND
        assert shard.shard_index == k
        assert shard.param("shards") is None  # sibling count not hashed
        assert shard.param("num_batches") == 1 + 1  # slice + own discard
    assert len({s.unit_hash for s in plan_a}) == 4


def test_overlapping_decompositions_share_shard_hashes():
    # 21 batches split 4 ways and 11 batches split 2 ways both give
    # shards with a 5-batch retained slice — the same simulation, so
    # the same content hash (cross-decomposition store reuse).
    wide = traffic_parent(shards=4, params={"num_batches": 21})
    narrow = traffic_parent(shards=2, params={"num_batches": 11})
    wide_hashes = [s.unit_hash for s in shard_specs(wide)]
    narrow_hashes = [s.unit_hash for s in shard_specs(narrow)]
    assert wide_hashes[:2] == narrow_hashes


def test_shards_equal_one_leaves_unit_untouched():
    plain = traffic_parent(shards=1)
    assert unit_shards(plain) == 1
    assert plain.param("shards") is None  # hash identical to the seed grid
    with pytest.raises(ValueError, match="no sharding"):
        shard_specs(plain)


def test_shard_cost_estimate_is_per_shard():
    parent = traffic_parent(shards=4, params={"num_batches": 21})
    shard = shard_specs(parent)[0]
    assert estimate_unit_cost(shard) < estimate_unit_cost(parent)


# ------------------------------------------------- execution determinism
def test_sharded_execution_paths_are_byte_identical(tmp_path):
    parent = traffic_parent(shards=4)
    spec = CampaignSpec(name="shard-diff", seed=0, units=(parent,))

    inline = execute_unit(parent)  # the definition: serial shards + merge
    serial = run_campaign(spec, workers=1)[0]
    parallel = run_campaign(spec, workers=4)[0]
    assert serial.result == inline.result == parallel.result

    # resumed from a store that holds only the shard records
    # ("interrupted before the merge"): no simulation re-runs, the
    # merge is re-derived.
    store = JsonlStore(tmp_path / "mid-merge.jsonl")
    for shard in shard_specs(parent):
        store.append(execute_unit(shard))
    resumed = run_campaign(spec, workers=1, store=store)[0]
    assert resumed.result == inline.result
    merged = store.get(parent.unit_hash)
    assert merged is not None and merged.result == inline.result


def test_merge_rejects_missing_or_duplicate_shards():
    parent = traffic_parent(shards=2)
    records = [execute_unit(s) for s in shard_specs(parent)]
    merge_shard_records(parent, records)  # complete set is fine
    with pytest.raises(ValueError, match="expected 0..1"):
        merge_shard_records(parent, records[:1])
    with pytest.raises(ValueError, match="expected 0..1"):
        merge_shard_records(parent, [records[0], records[0]])


def test_quick_fig3_row_sharded_vs_serial_golden_diff():
    """The acceptance diff: one quick-scale fig3 point, --shards 4,
    parallel workers vs the serial run — byte-identical rows."""
    kwargs = dict(loads=[1.0], algorithms=["DB"], scale="quick", shards=4)
    serial = run_traffic_sweep("fig3", workers=1, **kwargs)
    parallel = run_traffic_sweep("fig3", workers=4, **kwargs)
    assert serial == parallel  # dataclass equality: every float equal
    [row] = serial
    assert row.operations > 0 and row.mean_latency_us > 0


def test_sharded_campaign_spec_declares_parents_only():
    spec = traffic_campaign("fig3", scale="smoke", shards=2, loads=[1.0, 2.0])
    assert all(u.kind == "traffic" for u in spec.units)
    assert all(unit_shards(u) == 2 for u in spec.units)
    # same grid, different shard count → different campaign identity
    other = traffic_campaign("fig3", scale="smoke", shards=1, loads=[1.0, 2.0])
    assert spec.campaign_hash != other.campaign_hash
    assert spec.name == other.name  # shares the default store location


def test_two_pools_share_one_sharded_point(tmp_path):
    """Two pools on one sqlite store split the shards; exactly one
    merged parent record, identical to the single-pool result."""
    parent = traffic_parent(shards=4)
    spec = CampaignSpec(name="two-pools", seed=0, units=(parent,))
    reference = execute_unit(parent)

    store = SqliteStore(tmp_path / "pools.sqlite")
    first = run_campaign(spec, workers=2, store=store)
    second = run_campaign(spec, workers=2, store=store)  # full resume
    assert first[0].result == second[0].result == reference.result


# ------------------------------------------------------------ heartbeats
def test_lease_heartbeat_outlives_short_ttl(tmp_path):
    store = SqliteStore(tmp_path / "leases.sqlite")
    ttl = 0.3
    assert store.try_claim("unit-a", "worker-1", ttl_s=ttl)
    with lease_heartbeat(store, "unit-a", "worker-1", ttl_s=ttl):
        time.sleep(3 * ttl)  # far beyond the TTL
        # the lease must still be live and still ours
        assert "unit-a" in store.leased_hashes()
        assert not store.try_claim("unit-a", "peer:0:deadbeef", ttl_s=ttl)
    store.release("unit-a", "worker-1")
    assert store.try_claim("unit-a", "peer:0:deadbeef", ttl_s=ttl)


def test_lease_heartbeat_noop_without_lease_support(tmp_path):
    store = JsonlStore(tmp_path / "plain.jsonl")
    with lease_heartbeat(store, "unit-a", "worker-1", ttl_s=0.1):
        time.sleep(0.05)  # nothing to assert beyond "does not blow up"


# ------------------------------------------------------------------- CLI
def test_cli_status_reports_shard_progress(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    spec = traffic_campaign("fig3", scale="smoke", shards=2, loads=[4.0])
    [parent] = [u for u in spec.units if u.algorithm == "DB"]
    store = JsonlStore(tmp_path / "campaigns" / f"{spec.name}.jsonl")
    # land exactly one shard of the DB point
    store.append(execute_unit(shard_specs(parent)[0]))

    assert main(["campaign", "status", "fig3", "--scale", "smoke",
                 "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "1/2 shards, 1 to run" in out

    # land the second shard but not the merge → merge pending
    store.append(execute_unit(shard_specs(parent)[1]))
    assert main(["campaign", "status", "fig3", "--scale", "smoke",
                 "--shards", "2"]) == 0
    assert "2/2 shards, merge pending" in capsys.readouterr().out


def test_cli_shards_note_for_broadcast_grids(capsys, monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)
    assert main(["campaign", "status", "fig1", "--scale", "smoke",
                 "--shards", "4"]) == 0
    assert "runs unsharded" in capsys.readouterr().out
