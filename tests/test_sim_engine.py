"""Unit tests for the discrete-event kernel (`repro.sim.engine`)."""

import pytest

from repro.sim import Environment, SimulationError


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_clock_custom_start():
    assert Environment(initial_time=5.0).now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.5)
    env.run()
    assert env.now == 3.5


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_time_processes_earlier_events():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(1.0)
        seen.append(env.now)
        yield env.timeout(10.0)
        seen.append(env.now)

    env.process(proc(env))
    env.run(until=5.0)
    assert seen == [1.0]
    assert env.now == 5.0


def test_run_until_past_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "result"

    p = env.process(proc(env))
    assert env.run(until=p) == "result"
    assert env.now == 2.0


def test_run_until_event_never_triggering_raises():
    env = Environment()
    ev = env.event()  # never triggered
    env.timeout(1.0)
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_run_drains_heap_without_until():
    env = Environment()
    env.timeout(1.0)
    env.timeout(2.0)
    env.run()
    assert env.now == 2.0
    assert env.peek() == float("inf")


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, label):
        yield env.timeout(1.0)
        order.append(label)

    for label in "abc":
        env.process(proc(env, label))
    env.run()
    assert order == ["a", "b", "c"]


def test_step_on_empty_heap_raises():
    with pytest.raises(SimulationError):
        Environment().step()


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(7.0)
    env.timeout(3.0)
    assert env.peek() == 3.0


def test_nested_process_spawning():
    env = Environment()
    finished = []

    def child(env, i):
        yield env.timeout(i)
        finished.append(i)

    def parent(env):
        yield env.timeout(1.0)
        children = [env.process(child(env, i)) for i in (3, 1, 2)]
        yield env.all_of(children)
        finished.append("parent")

    env.process(parent(env))
    env.run()
    assert finished == [1, 2, 3, "parent"]
    assert env.now == 4.0


def test_unhandled_process_exception_propagates_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_exception_in_awaited_process_propagates_to_waiter():
    env = Environment()
    caught = []

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    def waiter(env, target):
        try:
            yield target
        except ValueError as exc:
            caught.append(str(exc))

    target = env.process(bad(env))
    env.process(waiter(env, target))
    env.run()
    assert caught == ["inner"]
