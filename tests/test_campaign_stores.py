"""Tests for the pluggable store backends and the adaptive scheduler.

Covers backend parity (identical records and aggregates across
jsonl/sqlite/shared-dir), two concurrent pools draining one campaign
with no unit executed twice, adaptive-order determinism, the
cross-scale cache, and the backend-aware CLI surface.

The per-backend `CampaignStore` contract itself (claim exclusivity,
refresh, stale/dead-owner steal, append-then-release visibility, ...)
lives in the backend-agnostic suite in ``store_contract.py``, run
against all four backends — including http — by
``test_store_conformance.py``.
"""

import threading
import time

import pytest

from repro.campaigns import (
    BACKENDS,
    CampaignSpec,
    JsonlStore,
    ResultStore,
    SharedDirStore,
    SqliteStore,
    UnitSpec,
    aggregate,
    default_store_path,
    estimate_unit_cost,
    freeze_params,
    open_store,
    order_units,
    run_campaign,
)
from repro.campaigns.pool import register_unit_runner
from repro.cli import main
from repro.experiments.common import broadcast_units

ALL_BACKENDS = sorted(BACKENDS)


def small_campaign(seed=0):
    units = broadcast_units(
        "fig1", [(4, 4, 4)], ["RD", "DB"], 64, "smoke", seed=seed
    )
    return CampaignSpec(name=f"small-s{seed}", seed=seed, units=tuple(units))


def make_store(backend, tmp_path, name="c"):
    return open_store(default_store_path(name, backend, tmp_path), backend)


# -------------------------------------------------------------- factory
def test_open_store_infers_backend_from_path(tmp_path):
    assert isinstance(open_store(tmp_path / "a.jsonl"), JsonlStore)
    assert isinstance(open_store(tmp_path / "a.sqlite"), SqliteStore)
    assert isinstance(open_store(tmp_path / "a.db"), SqliteStore)
    assert isinstance(open_store(tmp_path / "a-dir"), SharedDirStore)
    (tmp_path / "existing").mkdir()
    assert isinstance(open_store(tmp_path / "existing"), SharedDirStore)
    # explicit backend always wins over the suffix
    assert isinstance(open_store(tmp_path / "a.jsonl", "sqlite"), SqliteStore)


def test_open_store_rejects_unknown_backend(tmp_path):
    with pytest.raises(ValueError):
        open_store(tmp_path / "x", "redis")
    with pytest.raises(ValueError):
        default_store_path("c", "redis", tmp_path)


def test_sqlite_migrates_pre_status_schema(tmp_path):
    """A database created before failure records existed (no status
    column) migrates in place on first open: old rows read back as ok
    records and failure records land cleanly alongside them."""
    import json
    import sqlite3

    from repro.campaigns.store import STATUS_FAILED, UnitRecord

    path = tmp_path / "old.sqlite"
    con = sqlite3.connect(path)
    con.execute(
        "CREATE TABLE records ("
        " unit_hash TEXT PRIMARY KEY, experiment TEXT NOT NULL,"
        " spec TEXT NOT NULL, result TEXT NOT NULL,"
        " elapsed_s REAL NOT NULL DEFAULT 0.0)"
    )
    con.execute(
        "CREATE TABLE leases ("
        " unit_hash TEXT PRIMARY KEY, owner TEXT NOT NULL,"
        " expires_at REAL NOT NULL)"
    )
    con.execute(
        "INSERT INTO records VALUES (?, ?, ?, ?, ?)",
        (
            "a" * 16,
            "fig1",
            json.dumps({"algorithm": "DB"}),
            json.dumps({"network_latency": 1.0}),
            0.5,
        ),
    )
    con.commit()
    con.close()

    store = SqliteStore(path)
    old = store.get("a" * 16)
    assert old is not None and old.ok
    assert old.result == {"network_latency": 1.0}
    assert store.completed_hashes() == {"a" * 16}

    failure = UnitRecord(
        unit_hash="b" * 16,
        experiment="fig1",
        spec={"algorithm": "RD"},
        result={
            "error": "ValueError",
            "message": "boom",
            "traceback_digest": "",
            "attempts": 3,
            "owner": "",
        },
        status=STATUS_FAILED,
    )
    store.append(failure)
    assert store.get("b" * 16).failed
    assert store.completed_hashes() == {"a" * 16}
    # A second handle (fresh instance, its own migration path) agrees.
    assert SqliteStore(path).records()["b" * 16].attempts == 3


def test_result_store_alias_is_jsonl():
    assert ResultStore is JsonlStore


# --------------------------------------------------------------- parity
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_backend_round_trip(backend, tmp_path):
    spec = small_campaign()
    store = make_store(backend, tmp_path)
    first = run_campaign(spec, store=store)
    assert store.completed_hashes() == set(spec.unit_hashes())
    # records() round-trips every field through the backend's storage
    assert [store.records()[h] for h in spec.unit_hashes()] == first
    # a resumed run recomputes nothing
    lines = []
    second = run_campaign(spec, store=store, progress=lines.append)
    assert second == first
    assert f"({len(spec)} cached, 0 to run" in lines[0]


def test_backends_produce_identical_records_and_aggregates(tmp_path):
    spec = small_campaign()
    records = {
        backend: run_campaign(spec, store=make_store(backend, tmp_path))
        for backend in ALL_BACKENDS
    }
    baseline = records[ALL_BACKENDS[0]]
    for backend in ALL_BACKENDS[1:]:
        assert records[backend] == baseline
    rows = {
        backend: aggregate("fig1", recs) for backend, recs in records.items()
    }
    baseline_rows = rows[ALL_BACKENDS[0]]
    for backend in ALL_BACKENDS[1:]:
        assert rows[backend] == baseline_rows


# --------------------------------------------------------------- leases
# Counting runner for the contention test: records every execution in
# an append-only log so a double execution is observable.
@register_unit_runner("counted")
def _run_counted_unit(spec):
    with open(spec.param("log"), "a", encoding="utf-8") as handle:
        handle.write(spec.unit_hash + "\n")
    time.sleep(0.005)  # widen the contention window
    return {"replication": spec.replication}


def counting_campaign(log_path, n_units=12):
    units = tuple(
        UnitSpec(
            experiment="contention",
            kind="counted",
            algorithm="DB",
            dims=(4, 4, 4),
            length_flits=8,
            seed=0,
            replication=replication,
            params=freeze_params(log=str(log_path)),
        )
        for replication in range(n_units)
    )
    return CampaignSpec(name="contention", seed=0, units=units)


@pytest.mark.parametrize("backend", ["sqlite", "shared"])
def test_two_concurrent_pools_execute_each_unit_once(backend, tmp_path):
    log = tmp_path / "executions.log"
    spec = counting_campaign(log)
    results = {}

    def pool(name):
        store = make_store(backend, tmp_path)  # own handle, same store
        results[name] = run_campaign(
            spec, store=store, poll_interval_s=0.01, lease_ttl_s=60.0
        )

    threads = [
        threading.Thread(target=pool, args=(name,)) for name in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive()

    executed = log.read_text().split()
    assert sorted(executed) == sorted(spec.unit_hashes())  # once each
    assert results["a"] == results["b"]
    assert [r.unit_hash for r in results["a"]] == spec.unit_hashes()


# ------------------------------------------------------------- schedule
def test_adaptive_order_is_deterministic_and_largest_first():
    units = broadcast_units(
        "fig1", [(4, 4, 4), (16, 16, 16), (8, 8, 8)], ["DB"], 64, "smoke", 0
    )
    ordered = order_units(units, "adaptive")
    assert ordered == order_units(units, "adaptive")  # deterministic
    assert sorted(ordered, key=lambda u: u.unit_hash) == sorted(
        units, key=lambda u: u.unit_hash
    )  # a permutation, nothing dropped
    costs = [estimate_unit_cost(u) for u in ordered]
    assert costs == sorted(costs, reverse=True)
    assert ordered[0].dims == (16, 16, 16)
    # ties (same cell, different replication) keep declaration order
    first_cell = [u for u in ordered if u.dims == (16, 16, 16)]
    assert [u.replication for u in first_cell] == sorted(
        u.replication for u in first_cell
    )


def test_order_units_fifo_and_unknown():
    units = broadcast_units("fig1", [(4, 4, 4)], ["DB"], 64, "smoke", 0)
    assert order_units(units, "fifo") == list(units)
    with pytest.raises(ValueError):
        order_units(units, "lifo")
    with pytest.raises(ValueError):
        run_campaign(small_campaign(), schedule="lifo")


def test_cost_estimate_reflects_load_length_and_barrier():
    base = UnitSpec(
        experiment="x", kind="broadcast", algorithm="DB",
        dims=(8, 8, 8), length_flits=100, seed=0,
    )
    assert estimate_unit_cost(base) < estimate_unit_cost(
        UnitSpec(
            experiment="x", kind="broadcast", algorithm="DB",
            dims=(16, 16, 8), length_flits=100, seed=0,
        )
    )
    barrier = UnitSpec(
        experiment="x", kind="broadcast", algorithm="DB",
        dims=(8, 8, 8), length_flits=100, seed=0,
        params=freeze_params(barrier=True),
    )
    assert estimate_unit_cost(barrier) == 2 * estimate_unit_cost(base)
    low = UnitSpec(
        experiment="x", kind="traffic", algorithm="DB",
        dims=(8, 8, 8), length_flits=32, seed=0, load=2.0,
    )
    high = UnitSpec(
        experiment="x", kind="traffic", algorithm="DB",
        dims=(8, 8, 8), length_flits=32, seed=0, load=8.0,
    )
    assert estimate_unit_cost(high) == 4 * estimate_unit_cost(low)


def test_schedules_produce_identical_records():
    spec = small_campaign(seed=4)
    assert run_campaign(spec, schedule="adaptive") == run_campaign(
        spec, schedule="fifo"
    )


# ---------------------------------------------------------------- cache
def test_cross_scale_cache_reuses_overlapping_units(tmp_path):
    smoke = broadcast_units("fig1", [(4, 4, 4)], ["DB"], 64, "smoke", 0)
    quick = broadcast_units("fig1", [(4, 4, 4)], ["DB"], 64, "quick", 0)
    smoke_hashes = {u.unit_hash for u in smoke}
    quick_hashes = {u.unit_hash for u in quick}
    assert smoke_hashes < quick_hashes  # strict hash-subset across scales

    smoke_store = JsonlStore(tmp_path / "smoke.jsonl")
    run_campaign(
        CampaignSpec(name="smoke", seed=0, units=tuple(smoke)),
        store=smoke_store,
    )
    quick_spec = CampaignSpec(name="quick", seed=0, units=tuple(quick))
    quick_store = SqliteStore(tmp_path / "quick.sqlite")
    lines = []
    cached_run = run_campaign(
        quick_spec,
        store=quick_store,
        cache=[smoke_store],
        progress=lines.append,
    )
    assert f"({len(smoke)} from cache stores)" in lines[0]
    # cache hits were copied into the primary store
    assert smoke_hashes < quick_store.completed_hashes()
    assert cached_run == run_campaign(quick_spec)  # identical to fresh


# ------------------------------------------------------------------- CLI
def test_cli_backends_byte_identical_aggregates(tmp_path, capsys):
    outs = {}
    for backend in ALL_BACKENDS:
        store = str(default_store_path(f"fig1-{backend}", backend, tmp_path))
        out_file = tmp_path / f"fig1-{backend}.csv"
        assert main(
            [
                "campaign", "run", "fig1", "--scale", "smoke",
                "--workers", "2", "--schedule", "adaptive",
                "--store", store, "--store-backend", backend,
                "--out", str(out_file),
            ]
        ) == 0
        capsys.readouterr()
        outs[backend] = out_file.read_bytes()
    assert outs["jsonl"] == outs["sqlite"] == outs["shared"]


def test_cli_status_reports_leases_and_backend(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    store = SqliteStore(default_store_path("fig1-smoke-s0", "sqlite"))
    from repro.experiments import campaign_for

    spec = campaign_for("fig1", "smoke", 0)
    hashes = spec.unit_hashes()
    store.append(
        run_campaign(
            CampaignSpec(name="one", seed=0, units=spec.units[:1])
        )[0]
    )
    assert store.try_claim(hashes[1], "worker-elsewhere", ttl_s=60)

    assert main(["campaign", "status", "fig1", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "[sqlite]" in out
    assert f"1/{len(spec)} units complete" in out
    assert "1 leased (in flight)" in out
    assert f"({len(spec) - 2} pending)" in out


def test_cli_status_per_backend_totals(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    args = ["fig1", "--scale", "smoke"]
    # default layout, no stores yet: one (empty jsonl) line
    assert main(["campaign", "status"] + args) == 0
    assert "[jsonl]: 0/32" in capsys.readouterr().out
    # populate two backends in the default layout
    for backend in ("sqlite", "shared"):
        assert main(
            ["campaign", "run", "--store-backend", backend] + args
        ) == 0
    capsys.readouterr()
    assert main(["campaign", "status"] + args) == 0
    out = capsys.readouterr().out
    assert "[sqlite]: 32/32" in out
    assert "[shared]: 32/32" in out
    assert "[jsonl]" not in out  # never created on disk


def test_cli_experiment_store_backend_and_schedule(tmp_path, capsys):
    store = str(tmp_path / "fig1.sqlite")
    assert main(
        [
            "fig1", "--scale", "smoke", "--workers", "2",
            "--schedule", "adaptive", "--store", store,
        ]
    ) == 0
    assert "Fig. 1" in capsys.readouterr().out
    # the run persisted its units: a campaign command can aggregate them
    assert main(
        [
            "campaign", "aggregate", "fig1", "--scale", "smoke",
            "--store", store,
        ]
    ) == 0
    assert "Fig. 1" in capsys.readouterr().out
