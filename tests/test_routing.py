"""Unit + property tests for routing functions and deadlock analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network import Mesh
from repro.routing import (
    DimensionOrdered,
    NegativeFirst,
    NorthLast,
    RoutingError,
    WestFirst,
    WestFirstPlanar,
    build_channel_dependence_graph,
    find_dependence_cycle,
    is_deadlock_free,
)


def coords_for(dims):
    return st.tuples(*[st.integers(0, d - 1) for d in dims])


# ---------------------------------------------------------- dimension ordered
def test_dor_path_is_xy():
    dor = DimensionOrdered(Mesh((4, 4)))
    assert dor.path((0, 0), (2, 2)) == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]


def test_dor_custom_order_yx():
    dor = DimensionOrdered(Mesh((4, 4)), order=(1, 0))
    assert dor.path((0, 0), (2, 2)) == [(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)]


def test_dor_invalid_order_rejected():
    with pytest.raises(ValueError):
        DimensionOrdered(Mesh((4, 4)), order=(0, 0))


def test_dor_single_candidate():
    dor = DimensionOrdered(Mesh((4, 4, 4)))
    assert len(dor.candidates((0, 0, 0), (3, 3, 3))) == 1


def test_dor_candidates_empty_at_target():
    dor = DimensionOrdered(Mesh((4, 4)))
    assert dor.candidates((2, 2), (2, 2)) == []


def test_next_hop_raises_without_candidates():
    dor = DimensionOrdered(Mesh((4, 4)))
    with pytest.raises(RoutingError):
        dor.next_hop((1, 1), (1, 1))


@given(
    st.tuples(st.integers(2, 6), st.integers(2, 6), st.integers(2, 6)).flatmap(
        lambda d: st.tuples(st.just(d), coords_for(d), coords_for(d))
    )
)
@settings(max_examples=50, deadline=None)
def test_dor_paths_are_minimal_and_monotone(args):
    dims, src, dst = args
    m = Mesh(dims)
    path = DimensionOrdered(m).path(src, dst)
    assert len(path) - 1 == m.distance(src, dst)
    # Dimension-monotone: once a dimension is left it never changes again.
    for axis in range(3):
        values = [n[axis] for n in path]
        deltas = [b - a for a, b in zip(values, values[1:]) if b != a]
        assert all(d > 0 for d in deltas) or all(d < 0 for d in deltas) or not deltas


# ---------------------------------------------------------- west-first model
def test_west_first_goes_west_exclusively_first():
    wf = WestFirst(Mesh((8, 8)))
    assert wf.candidates((5, 3), (2, 6)) == [(4, 3)]


def test_west_first_adapts_east_north_south():
    wf = WestFirst(Mesh((8, 8)))
    cands = wf.candidates((2, 3), (5, 6))
    assert set(cands) == {(3, 3), (2, 4)}


def test_west_first_rejects_3d():
    with pytest.raises(ValueError):
        WestFirst(Mesh((4, 4, 4)))


def test_west_first_path_minimal():
    m = Mesh((8, 8))
    wf = WestFirst(m)
    for src, dst in [((7, 0), (0, 7)), ((3, 3), (5, 1)), ((0, 0), (7, 7))]:
        path = wf.path(src, dst)
        assert len(path) - 1 == m.distance(src, dst)


def _turns(path):
    """Direction pairs (as (axis, sign)) for each turn in a node path."""
    dirs = []
    for a, b in zip(path, path[1:]):
        for axis, (x, y) in enumerate(zip(a, b)):
            if x != y:
                dirs.append((axis, 1 if y > x else -1))
    return list(zip(dirs, dirs[1:]))


WEST = (0, -1)


@given(
    st.tuples(st.integers(3, 8), st.integers(3, 8)).flatmap(
        lambda d: st.tuples(st.just(d), coords_for(d), coords_for(d))
    )
)
@settings(max_examples=50, deadline=None)
def test_west_first_never_turns_into_west(args):
    dims, src, dst = args
    wf = WestFirst(Mesh(dims))
    path = wf.path(src, dst)
    for before, after in _turns(path):
        if after == WEST:
            assert before == WEST, f"illegal turn into west: {before} -> {after}"


def test_north_last_defers_north():
    nl = NorthLast(Mesh((8, 8)))
    cands = nl.candidates((2, 2), (5, 5))
    assert (2, 3) not in cands  # north deferred
    assert (3, 2) in cands


def test_north_last_goes_north_when_nothing_else_left():
    nl = NorthLast(Mesh((8, 8)))
    assert nl.candidates((5, 2), (5, 5)) == [(5, 3)]


def test_negative_first_phases():
    nf = NegativeFirst(Mesh((6, 6, 6)))
    cands = nf.candidates((3, 3, 3), (1, 5, 2))
    assert set(cands) == {(2, 3, 3), (3, 3, 2)}  # negatives first
    cands2 = nf.candidates((1, 3, 2), (1, 5, 2))
    assert cands2 == [(1, 4, 2)]


def test_west_first_planar_routes_z_first():
    wfp = WestFirstPlanar(Mesh((4, 4, 4)))
    assert wfp.candidates((1, 1, 0), (2, 2, 3)) == [(1, 1, 1)]
    cands = wfp.candidates((1, 1, 3), (2, 2, 3))
    assert set(cands) == {(2, 1, 3), (1, 2, 3)}


def test_west_first_planar_requires_3d():
    with pytest.raises(ValueError):
        WestFirstPlanar(Mesh((4, 4)))


@given(
    st.tuples(st.integers(2, 4), st.integers(2, 4), st.integers(2, 4)).flatmap(
        lambda d: st.tuples(st.just(d), coords_for(d), coords_for(d))
    )
)
@settings(max_examples=50, deadline=None)
def test_west_first_planar_minimal(args):
    dims, src, dst = args
    m = Mesh(dims)
    path = WestFirstPlanar(m).path(src, dst)
    assert len(path) - 1 == m.distance(src, dst)


# ---------------------------------------------------------- deadlock analysis
def test_dor_is_deadlock_free_2d():
    assert is_deadlock_free(DimensionOrdered(Mesh((4, 4))))


def test_dor_is_deadlock_free_3d():
    assert is_deadlock_free(DimensionOrdered(Mesh((3, 3, 3))))


def test_west_first_is_deadlock_free():
    assert is_deadlock_free(WestFirst(Mesh((5, 5))))


def test_north_last_is_deadlock_free():
    assert is_deadlock_free(NorthLast(Mesh((4, 4))))


def test_negative_first_is_deadlock_free_3d():
    assert is_deadlock_free(NegativeFirst(Mesh((3, 3, 3))))


def test_west_first_planar_is_deadlock_free():
    assert is_deadlock_free(WestFirstPlanar(Mesh((3, 3, 3))))


def test_fully_adaptive_minimal_routing_has_cycles():
    """Sanity: the analysis *does* find cycles for unrestricted routing."""

    class FullyAdaptive(DimensionOrdered):
        name = "fully-adaptive"

        def candidates(self, current, target):
            out = []
            for axis in range(len(current)):
                delta = target[axis] - current[axis]
                if delta:
                    step = 1 if delta > 0 else -1
                    out.append(
                        current[:axis] + (current[axis] + step,) + current[axis + 1 :]
                    )
            return out

    graph = build_channel_dependence_graph(FullyAdaptive(Mesh((3, 3))))
    assert find_dependence_cycle(graph) is not None


def test_dependence_cycle_is_closed_walk():
    class FullyAdaptive(DimensionOrdered):
        def candidates(self, current, target):
            out = []
            for axis in range(len(current)):
                delta = target[axis] - current[axis]
                if delta:
                    step = 1 if delta > 0 else -1
                    out.append(
                        current[:axis] + (current[axis] + step,) + current[axis + 1 :]
                    )
            return out

    graph = build_channel_dependence_graph(FullyAdaptive(Mesh((3, 3))))
    cycle = find_dependence_cycle(graph)
    assert cycle[0] == cycle[-1]
    for a, b in zip(cycle, cycle[1:]):
        assert b in graph[a]
