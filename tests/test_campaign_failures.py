"""Failure-domain tests for the campaign engine.

Covers the fault-isolation contract of ``run_campaign``:

* a poisoned (always-failing) unit is retried with backoff, then
  quarantined via its persisted failure record, while every healthy
  unit still completes — on every store backend, serial and pooled;
* two racing pools share one retry budget through the store: the
  poisoned unit executes exactly ``retries + 1`` times *total*;
* a unit that SIGKILLs its worker takes the executor down; the pool
  respawns it, requeues the in-flight units (charging one attempt), and
  the finished campaign is byte-identical to a fault-free serial run;
* a unit that always kills its worker exhausts its budget through
  ``WorkerCrashError`` charges and quarantines;
* ``max_failures=0`` is strict fail-fast (the original exception
  propagates); ``max_failures=N`` aborts with ``TooManyFailuresError``
  once more than N units are quarantined;
* SIGTERM mid-campaign releases every held lease, prints a takeover
  summary, restores the previous handler and exits via
  ``KeyboardInterrupt``;
* failures emit ``unit.error`` / ``unit.retry`` / ``unit.quarantine``
  trace events (serial path included) that ``tools/check_trace.py``
  validates;
* the CLI surface: exit code 1 on a failed run, failed/quarantined
  counts in ``campaign status`` (text and ``--json``),
  ``campaign retry-failed`` resetting the budget, and ``aggregate``
  warning about skipped cells.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaigns import (
    CampaignSpec,
    TooManyFailuresError,
    UnitSpec,
    freeze_params,
    open_store,
    run_campaign,
)
from repro.campaigns.pool import register_unit_runner
from repro.cli import main
from repro.experiments.runner import campaign_for, run_experiment
from repro.obs.trace import read_trace_dir, summarize_trace

REPO = Path(__file__).resolve().parent.parent

LOCAL_BACKENDS = ("jsonl", "sqlite", "shared")


@register_unit_runner("ok-unit")
def _run_ok(spec):
    return {"value": spec.replication}


@register_unit_runner("poison-unit")
def _run_poison(spec):
    log = spec.param("log", None)
    if log:
        with open(log, "a", encoding="utf-8") as handle:
            handle.write(spec.unit_hash + "\n")
    raise ValueError(f"poisoned unit r{spec.replication}")


@register_unit_runner("kill-worker-once")
def _run_kill_worker_once(spec):
    """SIGKILL the worker on the first attempt, succeed afterwards."""
    log = spec.param("log")
    with open(log, "a", encoding="utf-8") as handle:
        handle.write(spec.unit_hash + "\n")
    with open(log, encoding="utf-8") as handle:
        attempt = sum(1 for line in handle if line.strip() == spec.unit_hash)
    if attempt <= 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return {"value": spec.replication}


@register_unit_runner("kill-worker-always")
def _run_kill_worker_always(spec):
    os.kill(os.getpid(), signal.SIGKILL)


@register_unit_runner("sigterm-self")
def _run_sigterm_self(spec):
    """Deliver SIGTERM to the pool's own process on one replication.

    Models an orchestrator (systemd, slurm, ^C) terminating the pool
    mid-campaign, at a deterministic point: the handler installed by
    ``run_campaign`` turns the signal into ``KeyboardInterrupt`` right
    here, mid-execute.
    """
    if spec.replication == int(spec.param("fire_on", -1)):
        os.kill(os.getpid(), signal.SIGTERM)
        time.sleep(5)  # the signal interrupts this sleep
    return {"value": spec.replication}


def _unit(kind, replication, **params):
    return UnitSpec(
        experiment="failures",
        kind=kind,
        algorithm="DB",
        dims=(4, 4, 4),
        length_flits=8,
        seed=0,
        replication=replication,
        params=freeze_params(**params),
    )


def mixed_campaign(log_path, n_healthy=6, n_poison=1):
    """``n_poison`` always-failing units among ``n_healthy`` good ones."""
    units = [
        _unit("poison-unit", i, log=str(log_path)) for i in range(n_poison)
    ]
    units += [_unit("ok-unit", n_poison + i) for i in range(n_healthy)]
    return CampaignSpec(name="failures", seed=0, units=tuple(units))


def poison_hashes(spec):
    return [u.unit_hash for u in spec.units if u.kind == "poison-unit"]


# ------------------------------------------------------- fault isolation
@pytest.mark.parametrize("backend", LOCAL_BACKENDS)
@pytest.mark.parametrize("workers", [1, 4])
def test_poison_unit_quarantined_healthy_units_complete(
    backend, workers, tmp_path
):
    log = tmp_path / "attempts.log"
    spec = mixed_campaign(log, n_healthy=6)
    store = open_store(tmp_path / f"poison-{backend}", backend)
    records = run_campaign(
        spec,
        workers=workers,
        store=store,
        retries=1,
        retry_backoff_s=0.01,
    )
    (poison_hash,) = poison_hashes(spec)

    # Records come back in declaration order, the failure in place.
    assert [r.unit_hash for r in records] == list(spec.unit_hashes())
    by_hash = {r.unit_hash: r for r in records}
    assert by_hash[poison_hash].failed
    assert by_hash[poison_hash].attempts == 2  # retries + 1
    assert by_hash[poison_hash].result["error"] == "ValueError"
    assert sum(1 for r in records if r.ok) == 6

    # Exactly retries+1 executions, no more.
    assert log.read_text().split().count(poison_hash) == 2

    # The quarantine is persisted: visible to any racing pool, but the
    # unit is not "complete".
    assert store.get(poison_hash).failed
    assert poison_hash not in store.completed_hashes()


def test_resumed_run_skips_quarantined_unit(tmp_path):
    log = tmp_path / "attempts.log"
    spec = mixed_campaign(log, n_healthy=3)
    store = open_store(tmp_path / "resume.jsonl", "jsonl")
    run_campaign(spec, store=store, retries=1, retry_backoff_s=0.01)
    executions = len(log.read_text().split())

    # Same budget: the stored ledger is exhausted, so the poisoned unit
    # is quarantined at triage without executing again.
    records = run_campaign(spec, store=store, retries=1, retry_backoff_s=0.01)
    assert len(log.read_text().split()) == executions
    assert sum(1 for r in records if r.failed) == 1

    # A *larger* budget grants the difference: 2 attempts stored,
    # retries=3 allows 4, so it runs twice more.
    run_campaign(spec, store=store, retries=3, retry_backoff_s=0.01)
    assert len(log.read_text().split()) == executions + 2


def test_racing_pools_share_one_retry_budget(tmp_path):
    log = tmp_path / "attempts.log"
    spec = mixed_campaign(log, n_healthy=8)
    path = tmp_path / "race.sqlite"
    results = [None, None]

    def drain(idx):
        results[idx] = run_campaign(
            spec,
            store=open_store(path, "sqlite"),
            retries=2,
            retry_backoff_s=0.01,
            poll_interval_s=0.01,
        )

    threads = [
        threading.Thread(target=drain, args=(idx,)) for idx in (0, 1)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert all(r is not None for r in results)

    # The attempt ledger travels through the store under the lease, so
    # the two pools burn ONE budget: exactly retries+1 executions total.
    (poison_hash,) = poison_hashes(spec)
    assert log.read_text().split().count(poison_hash) == 3
    for records in results:
        by_hash = {r.unit_hash: r for r in records}
        assert by_hash[poison_hash].failed
        assert sum(1 for r in records if r.ok) == 8


# ------------------------------------------------------- worker crashes
def test_worker_sigkill_respawns_pool_and_result_is_byte_identical(
    tmp_path,
):
    log = tmp_path / "attempts.log"
    units = [_unit("kill-worker-once", 0, log=str(log))]
    units += [_unit("ok-unit", 1 + i) for i in range(7)]
    spec = CampaignSpec(name="crashy", seed=0, units=tuple(units))

    lines = []
    records = run_campaign(
        spec,
        workers=2,
        store=open_store(tmp_path / "crash.jsonl", "jsonl"),
        progress=lines.append,
        retries=2,
        retry_backoff_s=0.01,
    )
    assert all(r.ok for r in records)
    assert any("respawned" in line for line in lines)

    # Fault-free serial baseline on the same spec (the pre-populated
    # log keeps the killer from killing again): byte-identical records.
    baseline = run_campaign(spec, store=open_store(tmp_path / "b.jsonl"))
    assert records == baseline


def test_unit_that_always_kills_its_worker_is_quarantined(tmp_path):
    units = [_unit("kill-worker-always", 0)]
    units += [_unit("ok-unit", 1 + i) for i in range(6)]
    spec = CampaignSpec(name="killer", seed=0, units=tuple(units))

    records = run_campaign(
        spec,
        workers=2,
        store=open_store(tmp_path / "killer.jsonl", "jsonl"),
        retries=3,
        retry_backoff_s=0.01,
    )
    killer = records[0]
    assert killer.failed
    assert killer.result["error"] == "WorkerCrashError"
    assert killer.attempts == 4  # every crash charged one attempt
    assert sum(1 for r in records if r.ok) == 6


# ------------------------------------------------------ failure budgets
def test_max_failures_zero_is_strict_fail_fast(tmp_path):
    spec = mixed_campaign(tmp_path / "ff.log", n_healthy=2)
    with pytest.raises(ValueError, match="poisoned unit"):
        run_campaign(
            spec,
            store=open_store(tmp_path / "ff.jsonl", "jsonl"),
            max_failures=0,
        )


def test_too_many_failures_aborts_the_run(tmp_path):
    spec = mixed_campaign(tmp_path / "many.log", n_healthy=2, n_poison=2)
    with pytest.raises(TooManyFailuresError):
        run_campaign(
            spec,
            store=open_store(tmp_path / "many.jsonl", "jsonl"),
            retries=0,
            max_failures=1,
            retry_backoff_s=0.01,
        )


def test_budget_validation():
    spec = mixed_campaign("unused.log", n_healthy=1, n_poison=0)
    with pytest.raises(ValueError):
        run_campaign(spec, retries=-1)
    with pytest.raises(ValueError):
        run_campaign(spec, max_failures=-2)


# ---------------------------------------------------- graceful shutdown
def test_sigterm_releases_leases_and_prints_takeover_summary(tmp_path):
    units = tuple(_unit("sigterm-self", i, fire_on=3) for i in range(20))
    spec = CampaignSpec(name="draining", seed=0, units=units)
    store = open_store(tmp_path / "drain.sqlite", "sqlite")
    lines = []
    previous = signal.getsignal(signal.SIGTERM)
    with pytest.raises(KeyboardInterrupt):
        run_campaign(
            spec, store=store, progress=lines.append, poll_interval_s=0.01
        )

    # The previous handler is back, every held lease was released, and
    # the one-line summary tells the operator a peer can take over.
    assert signal.getsignal(signal.SIGTERM) == previous
    assert store.leased_hashes() == set()
    assert any(
        "interrupted" in line and "peer pool" in line for line in lines
    )
    # Progress persisted: units 0-2 landed before the signal, so a
    # resumed run has strictly less left to do.
    assert len(store.completed_hashes()) == 3


# ------------------------------------------------------------ telemetry
def test_serial_failures_emit_validated_trace_events(tmp_path):
    spec = mixed_campaign(tmp_path / "tr.log", n_healthy=2)
    trace_dir = tmp_path / "spool"
    run_campaign(
        spec,
        store=open_store(tmp_path / "tr.jsonl", "jsonl"),
        trace_dir=trace_dir,
        retries=1,
        retry_backoff_s=0.01,
    )
    failures = summarize_trace(read_trace_dir(trace_dir))["failures"]
    assert failures["unit.error"] == 2
    assert failures["unit.retry"] == 1
    assert failures["unit.quarantine"] == 1

    check = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_trace.py"),
         str(trace_dir)],
        capture_output=True,
        text=True,
    )
    assert check.returncode == 0, check.stdout + check.stderr
    assert "2 error(s) (1 retried, 1 quarantined" in check.stdout


# -------------------------------------------------------------- the CLI
@pytest.fixture
def fast_broadcast(monkeypatch):
    """Replace the real broadcast runner with an instant fake.

    Imports the built-in runners first so the real registration exists,
    then overrides it for the duration of the test — the CLI tests here
    exercise the failure plumbing, not the simulator.
    """
    import repro.campaigns.units  # noqa: F401  (registers built-ins)
    from repro.campaigns import pool as pool_mod

    monkeypatch.setitem(
        pool_mod._UNIT_RUNNERS,
        "broadcast",
        lambda spec: {
            "network_latency": 1.0,
            "mean_latency": 1.0,
            "cv": 0.1,
            "barrier_cv": 0.1,
            "delivered": 64,
            "source": [0, 0, 0],
        },
    )


def test_cli_failure_flow_run_status_retry(
    tmp_path, capsys, monkeypatch, fast_broadcast
):
    store = str(tmp_path / "cli.jsonl")
    spec = campaign_for("fig1", "smoke", 0)
    poison_hash = spec.units[0].unit_hash
    monkeypatch.setenv("REPRO_FAIL_UNITS", poison_hash)

    # run: healthy units complete, the poisoned one quarantines, exit 1.
    rc = main([
        "campaign", "run", "fig1", "--scale", "smoke",
        "--retries", "1", "--store", store,
    ])
    captured = capsys.readouterr()
    assert rc == 1
    assert "quarantined" in captured.out
    assert "skipping failed cell" in captured.err
    assert "retry-failed" in captured.err

    # aggregate: partial table plus an explicit warning, exit 1.
    rc = main([
        "campaign", "aggregate", "fig1", "--scale", "smoke",
        "--store", store,
    ])
    captured = capsys.readouterr()
    assert rc == 1
    assert "skipping failed cell" in captured.err

    # status (text): failed/quarantined counts plus the reason line.
    rc = main([
        "campaign", "status", "fig1", "--scale", "smoke",
        "--retries", "1", "--store", store,
    ])
    captured = capsys.readouterr()
    assert rc == 0
    assert "1 failed (1 quarantined)" in captured.out
    assert "injected failure" in captured.out

    # status classifies against the *given* budget: with --retries 3
    # the 2 stored attempts are not exhausted yet.
    rc = main([
        "campaign", "status", "fig1", "--scale", "smoke",
        "--retries", "3", "--store", store,
    ])
    assert "1 failed (0 quarantined)" in capsys.readouterr().out

    # status --json: machine-readable failure details.
    rc = main([
        "campaign", "status", "fig1", "--scale", "smoke",
        "--retries", "1", "--store", store, "--json",
    ])
    doc = json.loads(capsys.readouterr().out)[0]
    assert doc["failed"] == 1 and doc["quarantined"] == 1
    assert doc["completed"] == doc["total"] - 1
    (failed_unit,) = [u for u in doc["units"] if u["state"] == "failed"]
    assert failed_unit["failure"]["error"] == "InjectedFailureError"
    assert failed_unit["failure"]["attempts"] == 2
    assert failed_unit["failure"]["quarantined"] is True

    # retry-failed resets the budget; a clean re-run then completes.
    rc = main([
        "campaign", "retry-failed", "fig1", "--scale", "smoke",
        "--store", store,
    ])
    captured = capsys.readouterr()
    assert rc == 0
    assert "reset 1 of 1 failed record(s)" in captured.out

    monkeypatch.delenv("REPRO_FAIL_UNITS")
    rc = main([
        "campaign", "run", "fig1", "--scale", "smoke",
        "--retries", "1", "--store", store,
    ])
    capsys.readouterr()
    assert rc == 0
    rc = main([
        "campaign", "status", "fig1", "--scale", "smoke", "--store", store,
    ])
    status = capsys.readouterr().out
    assert rc == 0
    assert "32/32 units complete" in status
    assert "failed" not in status


def test_run_experiment_warns_on_failed_cells(monkeypatch, fast_broadcast):
    spec = campaign_for("fig1", "smoke", 0)
    monkeypatch.setenv("REPRO_FAIL_UNITS", spec.units[0].unit_hash)
    with pytest.warns(RuntimeWarning, match="skipping failed cell"):
        rows, text = run_experiment("fig1", "smoke", 0, retries=0)
    assert rows and text
