"""Unit + property tests for the metrics subpackage."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    BatchMeans,
    coefficient_of_variation,
    improvement_percent,
    summarize,
    t_confidence_interval,
)
from repro.metrics.confidence import t_quantile

floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


# ---------------------------------------------------------------- summarize
def test_summarize_basic():
    s = summarize([2.0, 4.0, 6.0])
    assert s.count == 3
    assert s.mean == pytest.approx(4.0)
    assert s.minimum == 2.0 and s.maximum == 6.0
    assert s.cv == pytest.approx(np.std([2, 4, 6]) / 4)


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_cv_zero_mean_cases():
    assert summarize([0.0, 0.0]).cv == 0.0
    assert math.isinf(summarize([-1.0, 1.0]).cv)


@given(st.lists(floats, min_size=2, max_size=50), st.floats(0.1, 100))
@settings(max_examples=50)
def test_cv_scale_invariant(values, scale):
    """CV(aX) == CV(X) for a > 0."""
    base = coefficient_of_variation(values)
    scaled = coefficient_of_variation([v * scale for v in values])
    if math.isfinite(base) and base > 1e-9:
        assert scaled == pytest.approx(base, rel=1e-6)


# ---------------------------------------------------- improvement percent
def test_improvement_percent_matches_paper_table1():
    """Back out the paper's own Table 1 arithmetic."""
    # RD CV 0.2540 with DBIMR 65.41% implies CV_DB ~ 0.1536.
    cv_db = 0.2540 / (1 + 65.41 / 100)
    assert improvement_percent(0.2540, cv_db) == pytest.approx(65.41, abs=0.01)


def test_improvement_percent_zero_when_equal():
    assert improvement_percent(0.3, 0.3) == pytest.approx(0.0)


def test_improvement_percent_invalid():
    with pytest.raises(ValueError):
        improvement_percent(0.3, 0.0)
    with pytest.raises(ValueError):
        improvement_percent(-0.1, 0.2)


# ------------------------------------------------------------ t intervals
def test_t_quantile_known_values():
    """Spot-check against standard t-table entries."""
    assert t_quantile(0.975, 10) == pytest.approx(2.228, abs=2e-3)
    assert t_quantile(0.975, 20) == pytest.approx(2.086, abs=2e-3)
    assert t_quantile(0.95, 5) == pytest.approx(2.015, abs=2e-3)
    assert t_quantile(0.5, 7) == 0.0


def test_t_quantile_matches_scipy():
    scipy_stats = pytest.importorskip("scipy.stats")
    for p in (0.9, 0.95, 0.975, 0.995):
        for df in (1, 2, 5, 20, 100):
            assert t_quantile(p, df) == pytest.approx(
                float(scipy_stats.t.ppf(p, df)), abs=1e-6
            )


def test_t_quantile_invalid_inputs():
    with pytest.raises(ValueError):
        t_quantile(0.0, 5)
    with pytest.raises(ValueError):
        t_quantile(0.95, 0)


def test_confidence_interval_properties():
    ci = t_confidence_interval([10.0, 12.0, 11.0, 9.0, 13.0], level=0.95)
    assert ci.low < ci.mean < ci.high
    assert ci.contains(ci.mean)
    assert ci.count == 5
    assert ci.half_width > 0
    assert 0 < ci.relative_half_width < 1


def test_confidence_interval_needs_two():
    with pytest.raises(ValueError):
        t_confidence_interval([1.0])


def test_confidence_interval_level_bounds():
    with pytest.raises(ValueError):
        t_confidence_interval([1.0, 2.0], level=1.5)


def test_wider_level_gives_wider_interval():
    data = [10.0, 12.0, 11.0, 9.0, 13.0, 10.5]
    ci95 = t_confidence_interval(data, 0.95)
    ci99 = t_confidence_interval(data, 0.99)
    assert ci99.half_width > ci95.half_width


@given(st.lists(st.floats(1.0, 100.0), min_size=5, max_size=30))
@settings(max_examples=30)
def test_interval_contains_sample_mean(values):
    ci = t_confidence_interval(values)
    assert ci.contains(float(np.mean(values)))


# ------------------------------------------------------------ batch means
def test_batch_means_paper_protocol():
    """21 batches, first discarded, mean over the remaining 20."""
    bm = BatchMeans(batch_size=5, num_batches=21, discard=1)
    # Cold-start batch is optimistic (low), the rest are steady.
    for _ in range(5):
        bm.add(1.0)  # warm-up batch
    for _ in range(100):
        bm.add(10.0)
    assert bm.complete
    result = bm.result()
    assert result.num_batches == 20
    assert result.discarded == 1
    assert result.mean == pytest.approx(10.0)  # cold start excluded


def test_batch_means_without_discard_is_biased():
    biased = BatchMeans(batch_size=5, num_batches=21, discard=0)
    for _ in range(5):
        biased.add(1.0)
    for _ in range(100):
        biased.add(10.0)
    assert biased.result().mean < 10.0


def test_batch_means_ignores_extra_observations():
    bm = BatchMeans(batch_size=2, num_batches=3, discard=0)
    bm.extend([1, 2, 3, 4, 5, 6, 100, 100])
    assert bm.result().mean == pytest.approx(3.5)


def test_batch_means_observations_needed():
    bm = BatchMeans(batch_size=4, num_batches=3, discard=0)
    assert bm.observations_needed == 12
    bm.extend([1, 2, 3])
    assert bm.observations_needed == 9
    bm.extend(range(9))
    assert bm.observations_needed == 0
    assert bm.complete


def test_batch_means_incomplete_result():
    bm = BatchMeans(batch_size=2, num_batches=5, discard=1)
    bm.extend([1, 2, 3, 4])  # 2 batches collected
    result = bm.result()
    assert result.num_batches == 1


def test_batch_means_no_retained_raises():
    bm = BatchMeans(batch_size=2, num_batches=5, discard=1)
    bm.extend([1, 2])  # only the to-be-discarded batch
    with pytest.raises(ValueError):
        bm.result()


def test_batch_means_validation():
    with pytest.raises(ValueError):
        BatchMeans(batch_size=0)
    with pytest.raises(ValueError):
        BatchMeans(batch_size=1, num_batches=0)
    with pytest.raises(ValueError):
        BatchMeans(batch_size=1, num_batches=5, discard=5)


def test_batch_means_interval_present_with_enough_batches():
    bm = BatchMeans(batch_size=1, num_batches=5, discard=1)
    bm.extend([5, 4, 6, 5, 5])
    result = bm.result()
    assert result.interval is not None
    assert result.interval.contains(result.mean)
