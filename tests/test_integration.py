"""End-to-end integration tests across subsystem boundaries.

These exercise the full stack — topology → routing → schedule →
event-driven simulation → metrics — the way a downstream user would,
including concurrent broadcasts and broadcasts mixed with unicast
traffic on one shared network.
"""

import pytest

from repro import Mesh, NetworkConfig, NetworkSimulator, broadcast, get_algorithm
from repro.core import EventDrivenExecutor
from repro.core.adaptive_broadcast import AdaptiveBroadcast
from repro.metrics import BroadcastStatsCollector
from repro.network import Message, PathTransmission
from repro.routing import DimensionOrdered, Path


def test_public_broadcast_api_end_to_end():
    outcome = broadcast("DB", Mesh((4, 4, 4)), (1, 2, 3), length_flits=64)
    assert outcome.delivered_count == 63
    assert outcome.network_latency > 0
    assert 0 < outcome.coefficient_of_variation < 1


def test_broadcast_reproducible_across_runs():
    a = broadcast("AB", Mesh((4, 4, 4)), (0, 1, 2), seed=5)
    b = broadcast("AB", Mesh((4, 4, 4)), (0, 1, 2), seed=5)
    assert a.arrivals == b.arrivals


def test_two_concurrent_broadcasts_share_the_network():
    """Two DB broadcasts launched together contend at the mesh corners."""
    mesh = Mesh((4, 4, 4))
    config = NetworkConfig(ports_per_node=2)
    algo = get_algorithm("DB")(mesh)

    solo_net = NetworkSimulator(mesh, config)
    solo = EventDrivenExecutor(solo_net).execute(algo.schedule((0, 0, 0)), 64)

    shared_net = NetworkSimulator(mesh, config)
    executor = EventDrivenExecutor(shared_net)
    p1 = executor.launch(algo.schedule((0, 0, 0)), 64)
    p2 = executor.launch(algo.schedule((3, 3, 3)), 64)
    shared_net.run()
    out1, out2 = p1.value, p2.value

    assert out1.delivered_count == out2.delivered_count == 63
    # Contention can only slow things down relative to a solo run.
    assert out1.network_latency >= solo.network_latency - 1e-9
    assert out2.network_latency >= solo.network_latency - 1e-9
    # Both broadcasts must be slower than at least one would be alone
    # (they share the same corner pillars).
    assert max(out1.network_latency, out2.network_latency) > solo.network_latency


def test_broadcast_with_background_unicast_traffic():
    """A broadcast crossing live unicast worms still delivers everywhere."""
    mesh = Mesh((4, 4, 4))
    net = NetworkSimulator(mesh, NetworkConfig(ports_per_node=2))
    dor = DimensionOrdered(mesh)

    # Saturate a few channels with long unicasts first.
    for src, dst in [((0, 0, 0), (3, 0, 0)), ((0, 1, 0), (0, 1, 3))]:
        msg = Message(source=src, destinations={dst}, length_flits=2000)
        PathTransmission(
            net, msg, path=Path(dor.path(src, dst), deliveries=[dst])
        ).start()

    algo = get_algorithm("DB")(mesh)
    outcome = EventDrivenExecutor(net).execute(algo.schedule((1, 2, 3)), 64)
    assert outcome.delivered_count == 63

    # Compare against an idle network: traffic must not speed things up.
    idle_net = NetworkSimulator(mesh, NetworkConfig(ports_per_node=2))
    idle = EventDrivenExecutor(idle_net).execute(algo.schedule((1, 2, 3)), 64)
    assert outcome.network_latency >= idle.network_latency - 1e-9


def test_all_algorithms_on_shared_collector():
    collector = BroadcastStatsCollector()
    mesh = Mesh((4, 4, 2))
    for name in ("RD", "EDN", "DB", "AB"):
        for source in [(0, 0, 0), (3, 3, 1)]:
            collector.record(broadcast(name, mesh, source, 32))
    assert collector.algorithms() == ["AB", "DB", "EDN", "RD"]
    for name in collector.algorithms():
        assert collector.count(name) == 2
        assert collector.mean_network_latency(name) > 0
    assert collector.mean_network_latency("AB") < collector.mean_network_latency(
        "RD"
    )


def test_adaptive_broadcast_under_congestion_uses_alternatives():
    """AB's step-1 worms pick the less-loaded west-first branch."""
    mesh = Mesh((6, 6, 1))
    net = NetworkSimulator(mesh, NetworkConfig(ports_per_node=2))
    routing = AdaptiveBroadcast.make_routing(mesh)

    # Clog the (2,2,0)->(3,2,0) channel, on AB's default eastward branch.
    msg = Message(source=(2, 2, 0), destinations={(3, 2, 0)}, length_flits=5000)
    PathTransmission(net, msg, path=Path([(2, 2, 0), (3, 2, 0)])).start()
    net.run(until=0.01)

    algo = AdaptiveBroadcast(mesh)
    outcome = EventDrivenExecutor(net, adaptive_routing=routing).execute(
        algo.schedule((2, 2, 0)), 16
    )
    assert outcome.delivered_count == 35


def test_deep_sequential_broadcasts_on_one_network():
    """The network stays consistent across many back-to-back operations."""
    mesh = Mesh((4, 4))
    net = NetworkSimulator(mesh, NetworkConfig(ports_per_node=2))
    algo = get_algorithm("DB")(mesh)
    executor = EventDrivenExecutor(net)
    last_end = 0.0
    for i in range(10):
        source = (i % 4, (i * 3) % 4)
        outcome = executor.execute(algo.schedule(source), 16)
        assert outcome.delivered_count == 15
        assert outcome.start_time >= last_end - 1e-9
        last_end = max(outcome.arrivals.values())
    # All channels released after the last broadcast drains.
    assert all(not ch.busy for ch in net.channels.values())
    assert all(node.ports.count == 0 for node in net.nodes.values())
