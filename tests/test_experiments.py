"""Tests for the experiment harness (`repro.experiments`).

These run everything at smoke scale: the goal is correctness of the
harness (rows well-formed, shape properties present, formatters sane),
not statistical precision — that is the benchmarks' job.
"""

import math

import pytest

from repro.experiments import (
    EXPERIMENTS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    format_table,
    run_cv_table,
    run_experiment,
    run_fig2,
    run_traffic_sweep,
    scale_by_name,
)
from repro.experiments.config import FIG1_SIZES, FIG2_SIZES
from repro.experiments.fig1 import format_fig1, run_fig1
from repro.experiments.reporting import rows_to_dicts


# ----------------------------------------------------------------- config
def test_scales():
    assert scale_by_name("quick").sources_per_point == 5
    assert scale_by_name("full").sources_per_point == 40
    assert scale_by_name("full").num_batches == 21
    with pytest.raises(KeyError):
        scale_by_name("nope")


def test_paper_tables_are_consistent():
    """Tables 1 and 2 share their baseline CV columns in the paper."""
    for baseline in ("RD", "EDN"):
        for nodes, (cv1, _) in PAPER_TABLE1[baseline].items():
            cv2, _ = PAPER_TABLE2[baseline][nodes]
            assert cv1 == cv2


def test_paper_sizes_node_counts():
    assert [4 * 4 * 4, 8 * 8 * 8, 10 * 10 * 10, 16 * 16 * 16] == [
        a * b * c for a, b, c in FIG1_SIZES
    ]
    assert [64, 256, 512, 1024] == [a * b * c for a, b, c in FIG2_SIZES]


# ------------------------------------------------------------------- fig1
def test_fig1_smoke_rows():
    rows = run_fig1(scale="smoke", seed=1)
    assert len(rows) == 4 * len(FIG1_SIZES)
    for row in rows:
        assert row.mean_latency_us > 0
        assert row.samples == 2
    text = format_fig1(rows)
    assert "RD" in text and "4096" in text


# ------------------------------------------------------------------- fig2
def test_fig2_smoke_rows():
    rows = run_fig2(scale="smoke", seed=1)
    assert len(rows) == 4 * len(FIG2_SIZES)
    for row in rows:
        assert 0 < row.mean_cv < 1
        assert 0 < row.mean_cv_barrier < 1


# ------------------------------------------------------------------ tables
def test_cv_table_rows_db():
    rows = run_cv_table("DB", scale="smoke", seed=1)
    assert len(rows) == 2 * len(FIG2_SIZES)
    for row in rows:
        assert row.proposed == "DB"
        assert row.baseline in ("RD", "EDN")
        assert row.paper_baseline_cv is not None
        assert math.isfinite(row.improvement_percent)


def test_cv_table_rejects_baselines():
    with pytest.raises(ValueError):
        run_cv_table("RD")


# ------------------------------------------------------------------ traffic
def test_traffic_sweep_rows():
    rows = run_traffic_sweep(
        "fig3", scale="smoke", seed=1, loads=[2.0], algorithms=["DB", "AB"]
    )
    assert len(rows) == 2
    for row in rows:
        assert row.load_messages_per_ms == 2.0
        assert row.operations > 0
        assert math.isfinite(row.mean_latency_us)


def test_traffic_sweep_bad_figure():
    with pytest.raises(ValueError):
        run_traffic_sweep("fig9")


# ------------------------------------------------------------------ runner
def test_runner_dispatch_unknown():
    with pytest.raises(KeyError):
        run_experiment("nope")


def test_runner_ids_cover_design_doc():
    expected = {
        "fig1", "fig2", "fig3", "fig4", "table1", "table2",
        "ablation-startup", "ablation-length", "ablation-maxdest",
        "ablation-ports",
    }
    assert expected == set(EXPERIMENTS)


def test_runner_returns_rows_and_text():
    rows, text = run_experiment("table2", scale="smoke", seed=2)
    assert rows and isinstance(text, str)
    assert "ABIMR%" in text


# ---------------------------------------------------------------- reporting
def test_format_table_from_dataclasses():
    rows = run_traffic_sweep(
        "fig3", scale="smoke", seed=1, loads=[2.0], algorithms=["AB"]
    )
    text = format_table(rows)
    assert "algorithm" in text and "AB" in text


def test_format_table_from_dicts():
    text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
    assert "a" in text and "0.125" in text


def test_format_table_empty():
    assert format_table([]) == "(no rows)"


def test_rows_to_dicts_rejects_other_types():
    with pytest.raises(TypeError):
        rows_to_dicts([42])
