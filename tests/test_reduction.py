"""Tests for global combine / reduction (`repro.core.reduction`)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BarrierStepExecutor, get_algorithm
from repro.core.reduction import ReductionExecutor, ReductionTree
from repro.network import Mesh, NetworkConfig


def tree_for(name, dims, source):
    mesh = Mesh(dims)
    schedule = get_algorithm(name)(mesh).schedule(source)
    return mesh, schedule, ReductionTree.from_broadcast(schedule, mesh)


# ---------------------------------------------------------------- trees
def test_tree_covers_all_nodes():
    mesh, _, tree = tree_for("DB", (4, 4, 4), (1, 2, 3))
    assert tree.num_nodes == 64
    assert tree.root == (1, 2, 3)


def test_tree_parents_terminate_at_root():
    _, _, tree = tree_for("RD", (8, 8), (3, 3))
    for node in tree.parent:
        walker = node
        for _ in range(100):
            if walker == tree.root:
                break
            walker = tree.parent[walker][0]
        assert walker == tree.root, node


def test_tree_children_inverse_of_parent():
    _, _, tree = tree_for("EDN", (4, 4, 4), (0, 0, 0))
    children = tree.children()
    for parent_node, kids in children.items():
        for kid in kids:
            assert tree.parent[kid][0] == parent_node


def test_tree_depth_bounded_by_steps():
    for name in ("RD", "EDN", "DB", "AB"):
        mesh, schedule, tree = tree_for(name, (4, 4, 4), (1, 1, 1))
        assert 1 <= tree.depth() <= schedule.num_steps, name


def test_tree_hops_positive():
    _, _, tree = tree_for("AB", (4, 4, 4), (1, 2, 3))
    for _, (_, hops) in tree.parent.items():
        assert hops >= 1


# ------------------------------------------------------------ execution
def test_reduction_completes_with_positive_latency():
    mesh, schedule, tree = tree_for("DB", (4, 4, 4), (0, 0, 0))
    outcome = ReductionExecutor(mesh, NetworkConfig(ports_per_node=2)).execute(
        tree, length_flits=64
    )
    assert outcome.latency > 0
    assert outcome.combine_count == 63
    assert len(outcome.send_times) == 63
    assert outcome.root == (0, 0, 0)


def test_reduction_leaf_sends_before_parent():
    mesh, schedule, tree = tree_for("RD", (8, 8), (0, 0))
    outcome = ReductionExecutor(mesh).execute(tree, length_flits=16)
    for child, (parent_node, _) in tree.parent.items():
        if parent_node == tree.root:
            continue
        assert outcome.send_times[parent_node] > outcome.send_times[child] - 1e-9


def test_reduction_combine_time_adds_latency():
    mesh, schedule, tree = tree_for("DB", (4, 4, 4), (0, 0, 0))
    fast = ReductionExecutor(mesh).execute(tree, 32)
    slow = ReductionExecutor(mesh, combine_time=1.0).execute(tree, 32)
    assert slow.latency > fast.latency


def test_reduction_invalid_combine_time():
    with pytest.raises(ValueError):
        ReductionExecutor(Mesh((4, 4)), combine_time=-1.0)


def test_reduce_from_broadcast_convenience():
    mesh = Mesh((4, 4))
    schedule = get_algorithm("DB")(mesh).schedule((0, 0))
    outcome = ReductionExecutor(mesh).reduce_from_broadcast(schedule, 32)
    assert outcome.combine_count == 15


@pytest.mark.parametrize("name", ["RD", "EDN", "DB", "AB"])
def test_reduction_mirrors_broadcast_cost(name):
    """Reduce over a broadcast tree costs about the broadcast itself.

    The tree is traversed in the opposite direction with the same
    per-edge costs; reductions lack the broadcast's multidestination
    sharing (each child sends its own worm), so reduction latency is
    bounded below by the barrier broadcast's per-chain cost and above
    by a port-serialisation factor.
    """
    mesh = Mesh((4, 4, 4))
    algo = get_algorithm(name)(mesh)
    config = NetworkConfig(ports_per_node=algo.ports_required)
    schedule = algo.schedule((1, 2, 3))
    forward = BarrierStepExecutor(mesh, config).execute(schedule, 64)
    backward = ReductionExecutor(mesh, config).reduce_from_broadcast(schedule, 64)
    ratio = backward.latency / forward.network_latency
    assert 0.3 < ratio < 3.0, (name, ratio)


@given(
    name=st.sampled_from(["RD", "DB", "AB"]),
    dims=st.tuples(st.integers(2, 5), st.integers(2, 5)),
    data=st.data(),
)
@settings(max_examples=30, deadline=None)
def test_reduction_property(name, dims, data):
    source = data.draw(st.tuples(*[st.integers(0, d - 1) for d in dims]))
    mesh = Mesh(dims)
    schedule = get_algorithm(name)(mesh).schedule(source)
    tree = ReductionTree.from_broadcast(schedule, mesh)
    assert tree.num_nodes == mesh.num_nodes
    outcome = ReductionExecutor(mesh).execute(tree, 16)
    assert outcome.combine_count == mesh.num_nodes - 1
    # Every non-root node sends exactly once, after time zero.
    assert all(t > 0 for t in outcome.send_times.values())
