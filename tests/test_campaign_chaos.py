"""Chaos tests for the distributed campaign fabric.

An in-process flaky HTTP proxy sits between `HttpStore` and a live
`CampaignCoordinator` and injects faults from a *deterministic* plan —
dropped calls (502 without forwarding), duplicated calls (forwarded
twice upstream, modelling a retry racing its own first attempt), and
delayed calls.  The invariants under test:

* a campaign run through a lossy, duplicating transport still
  completes, executes each unit exactly once, and produces records
  byte-identical to a serial fault-free run;
* a duplicated append never double-lands — the coordinator dedups by
  record content hash, so an append-only jsonl backing store gains
  exactly one line per unit;
* a worker killed mid-execute loses its lease to a successor pool
  (dead-local-owner steal, no TTL wait) and the campaign still
  finishes byte-identical;
* a unit that fails its first attempts and succeeds within the retry
  budget — through the lossy transport — yields records byte-identical
  to a fault-free serial run;
* a coordinator that goes permanently dark mid-campaign surfaces as
  `StoreUnreachableError` (an operational condition) rather than being
  misfiled as a unit failure record.
"""

import json
import multiprocessing
import os
import socket
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.campaigns import (
    CampaignSpec,
    HttpStore,
    StoreUnreachableError,
    UnitSpec,
    freeze_params,
    open_store,
    run_campaign,
)
from repro.campaigns.pool import register_unit_runner
from repro.campaigns.remote import CampaignCoordinator
from repro.obs.trace import ListSink, Tracer


@register_unit_runner("counted-chaos")
def _run_counted_chaos(spec):
    with open(spec.param("log"), "a", encoding="utf-8") as handle:
        handle.write(spec.unit_hash + "\n")
    time.sleep(0.005)
    return {"replication": spec.replication}


@register_unit_runner("flaky-chaos")
def _run_flaky_chaos(spec):
    """Fail the first ``fails_until`` attempts, then succeed.

    The shared log file doubles as the attempt counter: the number of
    times this unit's hash already appears is the attempt number, so a
    re-run of the same spec (with the log pre-populated) succeeds on
    its first try — which is exactly what the byte-identical baseline
    comparison below wants.
    """
    with open(spec.param("log"), "a", encoding="utf-8") as handle:
        handle.write(spec.unit_hash + "\n")
    with open(spec.param("log"), encoding="utf-8") as handle:
        attempt = sum(
            1 for line in handle if line.strip() == spec.unit_hash
        )
    if attempt <= int(spec.param("fails_until", 0)):
        raise RuntimeError(f"flaky failure on attempt {attempt}")
    time.sleep(0.005)
    return {"replication": spec.replication}


def flaky_campaign(log_path, fails_until=2, n_units=4):
    units = tuple(
        UnitSpec(
            experiment="chaos",
            kind="flaky-chaos",
            algorithm="DB",
            dims=(4, 4, 4),
            length_flits=8,
            seed=0,
            replication=replication,
            params=freeze_params(log=str(log_path), fails_until=fails_until),
        )
        for replication in range(n_units)
    )
    return CampaignSpec(name="chaos-flaky", seed=0, units=units)


def counting_campaign(log_path, n_units=8):
    units = tuple(
        UnitSpec(
            experiment="chaos",
            kind="counted-chaos",
            algorithm="DB",
            dims=(4, 4, 4),
            length_flits=8,
            seed=0,
            replication=replication,
            params=freeze_params(log=str(log_path)),
        )
        for replication in range(n_units)
    )
    return CampaignSpec(name="chaos", seed=0, units=units)


# ------------------------------------------------------------ the proxy
class _ProxyHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # keep test output clean
        pass

    def _reply(self, status, body):
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _relay(self):
        proxy = self.server
        with proxy.lock:
            proxy.seq += 1
            seq = proxy.seq
        action = proxy.plan(seq, self.command, self.path)
        proxy.actions[action] = proxy.actions.get(action, 0) + 1
        if action == "drop":
            self._reply(
                502, json.dumps({"error": "injected fault: dropped"}).encode()
            )
            return
        if action == "delay":
            time.sleep(0.02)
        length = int(self.headers.get("Content-Length") or 0)
        data = self.rfile.read(length) if length else None
        repeats = 2 if action == "dup" else 1
        for _ in range(repeats):
            status, body = proxy.forward(self.command, self.path, data)
        self._reply(status, body)

    do_GET = _relay
    do_POST = _relay


class FlakyProxy(ThreadingHTTPServer):
    """Forwards requests to ``upstream``, applying a fault plan.

    ``plan(seq, method, path)`` returns one of ``"ok"``, ``"drop"``,
    ``"dup"``, ``"delay"`` for the ``seq``-th request (1-based); being
    a pure function of the sequence number it makes every chaos run
    reproducible.  ``actions`` counts what was actually injected.
    """

    daemon_threads = True

    def __init__(self, upstream, plan):
        super().__init__(("127.0.0.1", 0), _ProxyHandler)
        self.upstream = upstream.rstrip("/")
        self.plan = plan
        self.seq = 0
        self.lock = threading.Lock()
        self.actions = {}
        self._thread = threading.Thread(
            target=self.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self):
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def forward(self, method, path, data):
        req = urllib.request.Request(
            self.upstream + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=10.0) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    def close(self):
        self.shutdown()
        self._thread.join(timeout=5.0)
        self.server_close()


@pytest.fixture
def backing(tmp_path):
    return open_store(tmp_path / "backing.jsonl", "jsonl")


@pytest.fixture
def coordinator(backing):
    with CampaignCoordinator(backing, port=0) as coord:
        yield coord


# --------------------------------------------------------------- chaos
def lossy_plan(seq, method, path):
    """Drop every 7th call, delay every 5th, duplicate every append."""
    if seq % 7 == 3:
        return "drop"
    if path.endswith("/append"):
        return "dup"
    if seq % 5 == 2:
        return "delay"
    return "ok"


def test_campaign_survives_lossy_duplicating_transport(
    coordinator, backing, tmp_path
):
    log = tmp_path / "executions.log"
    spec = counting_campaign(log)
    proxy = FlakyProxy(coordinator.url, lossy_plan)
    sink = ListSink()
    try:
        store = HttpStore(proxy.url, retries=4, backoff_s=0.01)
        store.set_tracer(Tracer(sink, pid=1, role="pool"))
        records = run_campaign(
            spec, store=store, poll_interval_s=0.01, lease_ttl_s=60.0
        )
    finally:
        proxy.close()

    # Faults were really injected, and the client really retried.
    assert proxy.actions.get("drop", 0) > 0
    assert proxy.actions.get("dup", 0) >= len(spec)
    retries = [
        r for r in sink.records
        if r.get("type") == "event" and r.get("name") == "rpc.retry"
    ]
    assert retries

    # ... yet each unit executed exactly once, results byte-identical.
    executed = log.read_text().split()
    assert sorted(executed) == sorted(spec.unit_hashes())
    assert records == run_campaign(spec)  # serial baseline (re-logs)
    assert backing.completed_hashes() == set(spec.unit_hashes())


def test_duplicated_append_never_double_merges(
    coordinator, backing, tmp_path
):
    # Duplicate *every* append at the transport. The backing store is
    # append-only jsonl: double-landing would be visible as extra
    # lines. The coordinator's content-hash dedup absorbs them all.
    spec = counting_campaign(tmp_path / "log", n_units=5)
    proxy = FlakyProxy(
        coordinator.url,
        lambda seq, method, path: (
            "dup" if path.endswith("/append") else "ok"
        ),
    )
    try:
        store = HttpStore(proxy.url, retries=3, backoff_s=0.01)
        run_campaign(spec, store=store)
        assert store.status()["appends_deduped"] >= len(spec)
    finally:
        proxy.close()

    lines = [
        json.loads(line)
        for line in backing.path.read_text().splitlines()
        if line
    ]
    hashes = [line["unit_hash"] for line in lines]
    assert sorted(hashes) == sorted(spec.unit_hashes())  # one line each


# -------------------------------------------------------- killed worker
def _claim_and_hang(url, unit_hash):
    """Subprocess body: win a long lease, then never come back."""
    store = HttpStore(url, retries=3, backoff_s=0.01)
    owner = f"{socket.gethostname()}:{os.getpid()}:chaos"
    assert store.try_claim(unit_hash, owner, ttl_s=3600)
    time.sleep(600)  # killed long before this expires


def test_killed_worker_lease_is_stolen_and_unit_rerun(tmp_path):
    # Needs a lease-arbitrating backing store (jsonl grants every
    # claim), so this test runs its own sqlite-backed coordinator.
    log = tmp_path / "executions.log"
    spec = counting_campaign(log, n_units=4)
    victim_hash = spec.unit_hashes()[0]
    sqlite_backing = open_store(tmp_path / "backing.sqlite", "sqlite")

    with CampaignCoordinator(sqlite_backing, port=0) as coord:
        ctx = multiprocessing.get_context("spawn")
        worker = ctx.Process(
            target=_claim_and_hang, args=(coord.url, victim_hash)
        )
        worker.start()
        try:
            store = HttpStore(coord.url, retries=3, backoff_s=0.01)
            deadline = time.monotonic() + 30.0
            while victim_hash not in store.leased_hashes():
                assert time.monotonic() < deadline, "worker never claimed"
                time.sleep(0.02)
            worker.kill()  # mid-"execute", lease still live for an hour
            worker.join(timeout=10.0)
            assert not worker.is_alive()

            # A successor pool steals the dead owner's lease
            # immediately (no TTL wait: the owner token names a dead
            # local pid) and finishes the campaign.
            records = run_campaign(
                spec,
                store=store,
                poll_interval_s=0.01,
                lease_ttl_s=3600.0,
            )
        finally:
            if worker.is_alive():  # pragma: no cover - cleanup on failure
                worker.kill()
                worker.join(timeout=5.0)

    executed = log.read_text().split()
    assert sorted(executed) == sorted(spec.unit_hashes())  # once each
    assert records == run_campaign(spec)  # serial baseline (re-logs)


# ------------------------------------------------------- flaky runners
def test_flaky_units_recover_within_retry_budget(
    coordinator, backing, tmp_path
):
    # Every unit fails its first two attempts and succeeds on the
    # third — through the lossy, duplicating transport.  The retry
    # budget (default 2 retries = 3 attempts) absorbs all of it, and
    # the surviving records are byte-identical to a fault-free run.
    log = tmp_path / "flaky.log"
    spec = flaky_campaign(log, fails_until=2)
    proxy = FlakyProxy(coordinator.url, lossy_plan)
    try:
        store = HttpStore(proxy.url, retries=4, backoff_s=0.01)
        records = run_campaign(
            spec,
            store=store,
            poll_interval_s=0.01,
            lease_ttl_s=60.0,
            retries=2,
            retry_backoff_s=0.01,
        )
    finally:
        proxy.close()

    # Exactly retries+1 executions per unit — counted before the
    # baseline run below appends its own executions to the log.
    executed = log.read_text().split()
    assert {
        h: executed.count(h) for h in spec.unit_hashes()
    } == {h: 3 for h in spec.unit_hashes()}
    assert all(r.ok for r in records)
    assert backing.completed_hashes() == set(spec.unit_hashes())

    # Baseline: same spec, fault-free serial run (the pre-populated log
    # makes every unit succeed on its first try).
    assert records == run_campaign(spec, retry_backoff_s=0.01)


def test_coordinator_outage_mid_campaign_surfaces_unreachable(
    coordinator, backing, tmp_path
):
    # The transport goes permanently dark at the first append: the
    # record can never land, so this is an operational failure of the
    # fabric, not of the unit — it must surface as
    # StoreUnreachableError (the CLI maps it to one stderr line), not
    # be swallowed into a failure record that quarantines a healthy
    # unit.
    spec = counting_campaign(tmp_path / "outage.log", n_units=4)
    state = {"dead": False}

    def blackout_plan(seq, method, path):
        if path.endswith("/append"):
            state["dead"] = True
        return "drop" if state["dead"] else "ok"

    proxy = FlakyProxy(coordinator.url, blackout_plan)
    try:
        store = HttpStore(proxy.url, retries=1, backoff_s=0.01)
        with pytest.raises(StoreUnreachableError):
            run_campaign(spec, store=store, poll_interval_s=0.01)
    finally:
        proxy.close()

    # No failure record was fabricated for the in-flight unit.
    assert all(r.ok for r in backing.records().values())
