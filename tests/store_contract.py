"""Backend-agnostic conformance suite for the `CampaignStore` contract.

`StoreContract` is a plain mixin: a test module inherits from it and
provides a ``store_factory`` fixture — a zero-argument callable that
returns a NEW store handle onto the SAME backing state each time it is
called (two handles model two cooperating worker pools).  Every test
here must pass for every backend — jsonl, sqlite, shared-dir, and the
HTTP network store — which is what makes the lease/merge invariants in
`run_campaign` backend-independent facts rather than per-backend luck.

The contract being pinned down:

* records/append/get round-trip every field; ``get`` of an unknown
  hash is ``None``; re-appending a hash is last-record-wins.
* ``try_claim`` is exclusive while a lease is live (for backends with
  ``supports_leases``), refreshable by its owner, released only by its
  owner, stolen after the TTL expires or immediately when the owner is
  a dead local process.
* claim and release are safe under *ambiguous retries* (the first
  attempt landed but its acknowledgement was lost): release is
  idempotent for the owning caller and never drops a peer's later
  lease, re-claiming one's own lease is a granted refresh.
* append-then-release ordering: once a unit's hash is claimable again,
  either its record is visible or the unit never ran.
* parent merges are idempotent across handles: the second pool to
  observe a completed parent adopts the stored record instead of
  appending a duplicate.
* failure records (``status="failed"`` carrying the error payload) are
  first-class: they round-trip with their attempt ledger, surface in
  ``records()``/``get`` but never in ``completed_hashes()`` (so a
  racing pool sees the quarantine), and a later successful record
  overwrites them.
"""

import socket
import subprocess
import time

from repro.campaigns.pool import register_unit_runner
from repro.campaigns.spec import CampaignSpec, UnitSpec, freeze_params
from repro.campaigns.store import (
    DEFAULT_LEASE_TTL_S,
    STATUS_FAILED,
    UnitRecord,
)


@register_unit_runner("contract-noop")
def _run_contract_noop(spec):
    return {"replication": spec.replication}


def _record(unit_hash, value, experiment="contract"):
    """A minimal well-formed unit record."""
    return UnitRecord(
        unit_hash=unit_hash,
        experiment=experiment,
        spec={"algorithm": "DB", "dims": [4, 4, 4]},
        result={"value": value},
    )


def _failure(unit_hash, attempts=3, experiment="contract"):
    """A minimal well-formed failure record (what `unit_failed` persists)."""
    return UnitRecord(
        unit_hash=unit_hash,
        experiment=experiment,
        spec={"algorithm": "DB", "dims": [4, 4, 4]},
        result={
            "error": "ValueError",
            "message": "boom",
            "traceback_digest": "feedfacefeedface",
            "attempts": attempts,
            "owner": "host:1:cafe",
        },
        status=STATUS_FAILED,
    )


class StoreContract:
    """Mixin of contract tests; parametrize via a `store_factory` fixture."""

    # ----------------------------------------------------------- records
    def test_append_get_records_round_trip(self, store_factory):
        store = store_factory()
        assert store.records() == {}
        assert store.get("missing" * 2) is None
        rec = _record("a" * 16, 1.5)
        store.append(rec)
        assert store.get("a" * 16) == rec
        assert store.records() == {"a" * 16: rec}
        assert store.completed_hashes() == {"a" * 16}

    def test_records_visible_through_second_handle(self, store_factory):
        writer, reader = store_factory(), store_factory()
        writer.append(_record("b" * 16, 2.0))
        assert reader.get("b" * 16) == _record("b" * 16, 2.0)
        assert reader.completed_hashes() == {"b" * 16}

    def test_reappend_is_last_record_wins(self, store_factory):
        store = store_factory()
        store.append(_record("c" * 16, 1.0))
        store.append(_record("c" * 16, 9.0))
        assert store.get("c" * 16).result["value"] == 9.0
        assert len(store.records()) == 1

    def test_duplicate_identical_append_is_idempotent(self, store_factory):
        # A retried append (same bytes, possibly through another handle)
        # must leave exactly one logical record with unchanged content.
        first, second = store_factory(), store_factory()
        rec = _record("d" * 16, 3.0)
        first.append(rec)
        second.append(rec)
        assert first.records() == {"d" * 16: rec}
        assert second.records() == {"d" * 16: rec}

    # ----------------------------------------------------------- failures
    def test_failure_record_round_trips(self, store_factory):
        store = store_factory()
        failure = _failure("f" * 16, attempts=3)
        store.append(failure)
        got = store.get("f" * 16)
        assert got == failure
        assert got.failed and not got.ok
        assert got.attempts == 3
        assert got.failure_reason == "ValueError: boom"
        assert "f" * 16 in store.records()
        # A failed unit is NOT complete: racing pools must still see it
        # as work (pending or quarantined, depending on the budget).
        assert store.completed_hashes() == set()

    def test_success_overwrites_failure_record(self, store_factory):
        store = store_factory()
        store.append(_failure("g" * 16))
        store.append(_record("g" * 16, 4.0))  # the retry that worked
        got = store.get("g" * 16)
        assert got.ok and not got.failed
        assert got.result == {"value": 4.0}
        assert store.completed_hashes() == {"g" * 16}
        assert len(store.records()) == 1

    def test_quarantine_visible_across_handles(self, store_factory):
        # Pool A exhausts a unit's retry budget and persists the failure
        # record; pool B (a different handle onto the same state) must
        # read the same attempt ledger so it skips the unit instead of
        # burning its own budget on a known-poisonous one.
        writer, reader = store_factory(), store_factory()
        writer.append(_failure("i" * 16, attempts=5))
        seen = reader.get("i" * 16)
        assert seen is not None and seen.failed
        assert seen.attempts == 5
        assert "i" * 16 not in reader.completed_hashes()
        assert reader.records()["i" * 16].failure_reason == "ValueError: boom"

    # ------------------------------------------------------------ leases
    def test_claim_exclusivity(self, store_factory):
        alice, bob = store_factory(), store_factory()
        assert alice.try_claim("h1", "alice", ttl_s=30)
        if not alice.supports_leases:
            # Leaseless backends grant everything and report no leases:
            # correctness then rests on idempotent merges alone.
            assert bob.try_claim("h1", "bob", ttl_s=30)
            assert alice.leased_hashes() == set()
            return
        assert not bob.try_claim("h1", "bob", ttl_s=30)
        assert alice.try_claim("h1", "alice", ttl_s=30)  # refresh own lease
        assert bob.leased_hashes() == {"h1"}

    def test_release_is_owner_only(self, store_factory):
        store = store_factory()
        if not store.supports_leases:
            store.release("h1", "anyone")  # must not raise
            return
        assert store.try_claim("h1", "alice", ttl_s=30)
        store.release("h1", "bob")  # not the owner: no-op
        assert store.leased_hashes() == {"h1"}
        store.release("h1", "alice")
        assert store.leased_hashes() == set()
        assert store.try_claim("h1", "bob", ttl_s=30)

    def test_stale_lease_is_stolen(self, store_factory):
        store = store_factory()
        if not store.supports_leases:
            return
        assert store.try_claim("h1", "crashed", ttl_s=0.01)
        time.sleep(0.05)
        assert store.leased_hashes() == set()  # expired
        assert store.try_claim("h1", "successor", ttl_s=30)
        assert not store.try_claim("h1", "crashed", ttl_s=30)

    def test_heartbeat_refresh_extends_lease(self, store_factory):
        store = store_factory()
        if not store.supports_leases:
            return
        assert store.try_claim("h1", "alice", ttl_s=0.25)
        for _ in range(4):  # keep beating past the original deadline
            time.sleep(0.08)
            assert store.try_claim("h1", "alice", ttl_s=0.25)
        assert not store.try_claim("h1", "bob", ttl_s=30)

    def test_dead_local_owner_lease_is_stolen_immediately(
        self, store_factory
    ):
        store = store_factory()
        if not store.supports_leases:
            return
        proc = subprocess.Popen(["true"])
        proc.wait()  # a pid that certainly no longer exists
        dead_owner = f"{socket.gethostname()}:{proc.pid}:deadbeef"
        assert store.try_claim("h1", dead_owner, ttl_s=3600)
        # Long TTL, but the owner process is gone: steal without waiting.
        assert store.try_claim("h1", "successor", ttl_s=30)
        # A live lease from another *host* is untouchable until the TTL.
        assert store.try_claim("h2", f"otherhost:{proc.pid}:cafe", ttl_s=3600)
        assert not store.try_claim("h2", "successor", ttl_s=30)

    def test_default_ttl_accepted(self, store_factory):
        store = store_factory()
        assert store.try_claim("h1", "alice", ttl_s=DEFAULT_LEASE_TTL_S)

    # ------------------------------------------- ambiguous-retry safety
    # A network store may have to *retry* a claim or release whose
    # first attempt landed but whose acknowledgement was lost.  The
    # retry then re-executes against changed state, so both operations
    # must be safe to repeat: release is idempotent for the owning
    # caller, claim-by-current-owner is a refresh.

    def test_release_retry_is_idempotent_for_owner(self, store_factory):
        store = store_factory()
        assert store.try_claim("h1", "alice", ttl_s=30)
        store.release("h1", "alice")
        store.release("h1", "alice")  # the ambiguous retry: a no-op
        assert store.leased_hashes() == set()
        if store.supports_leases:
            assert store.try_claim("h1", "bob", ttl_s=30)

    def test_stale_release_retry_preserves_next_owners_lease(
        self, store_factory
    ):
        # Alice releases; Bob claims; Alice's *retried* release (the
        # lost-acknowledgement case) arrives late.  It must not drop
        # Bob's lease — only the (unit, owner) pair is ever released.
        alice, bob = store_factory(), store_factory()
        if not alice.supports_leases:
            return
        assert alice.try_claim("h1", "alice", ttl_s=30)
        alice.release("h1", "alice")
        assert bob.try_claim("h1", "bob", ttl_s=30)
        alice.release("h1", "alice")  # late retry
        assert bob.leased_hashes() == {"h1"}
        assert not alice.try_claim("h1", "alice", ttl_s=30)

    def test_release_after_expiry_and_steal_is_noop(self, store_factory):
        # Alice's lease expires mid-release-retry and Bob steals the
        # unit; Alice's release, reading a lease that stops being hers
        # under her feet, must leave Bob's fresh lease intact.
        alice, bob = store_factory(), store_factory()
        if not alice.supports_leases:
            return
        assert alice.try_claim("h1", "alice", ttl_s=0.01)
        time.sleep(0.05)
        assert bob.try_claim("h1", "bob", ttl_s=30)
        alice.release("h1", "alice")
        assert bob.leased_hashes() == {"h1"}
        assert not alice.try_claim("h1", "alice", ttl_s=30)

    def test_reclaim_by_owner_is_refresh_not_reexecution(
        self, store_factory
    ):
        # A claim retried after an ambiguous failure re-claims a lease
        # the caller already holds.  That must be a *refresh* — granted
        # and extending the expiry — never contention with oneself.
        store = store_factory()
        if not store.supports_leases:
            assert store.try_claim("h1", "alice", ttl_s=30)
            assert store.try_claim("h1", "alice", ttl_s=30)
            return
        assert store.try_claim("h1", "alice", ttl_s=0.25)
        assert store.try_claim("h1", "alice", ttl_s=30)  # the retry
        time.sleep(0.3)  # past the original expiry
        assert store.leased_hashes() == {"h1"}  # refreshed, still live
        assert not store.try_claim("h1", "bob", ttl_s=30)

    # ----------------------------------------------- ordering / handoff
    def test_append_then_release_visibility(self, store_factory):
        # Pool A lands a unit and releases its lease; pool B, on winning
        # the subsequent claim, must already see the record via get().
        a, b = store_factory(), store_factory()
        assert a.try_claim("e" * 16, "pool-a", ttl_s=30)
        a.append(_record("e" * 16, 7.0))
        a.release("e" * 16, "pool-a")
        assert b.try_claim("e" * 16, "pool-b", ttl_s=30)
        assert b.get("e" * 16) == _record("e" * 16, 7.0)
        b.release("e" * 16, "pool-b")

    def test_idempotent_parent_merge_across_handles(self, store_factory):
        # Two pools sharing the backend both finish a sharded parent;
        # `run_campaign` adopts the stored record on the second merge,
        # so both runs return identical records and the store holds one.
        from repro.campaigns import run_campaign

        units = tuple(
            UnitSpec(
                experiment="contract",
                kind="contract-noop",
                algorithm="DB",
                dims=(4, 4, 4),
                length_flits=8,
                seed=0,
                replication=replication,
                params=freeze_params(),
            )
            for replication in range(3)
        )
        spec = CampaignSpec(name="contract-merge", seed=0, units=units)
        first = run_campaign(spec, store=store_factory())
        second = run_campaign(spec, store=store_factory())
        assert first == second
        assert len(store_factory().records()) == len(units)
