"""Tests for path-based multicast (`repro.core.multicast`)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import UnitStepExecutor
from repro.core.multicast import (
    DualPathMulticast,
    UnicastMulticast,
    hamiltonian_rank,
    hamiltonian_walk,
    validate_multicast,
)
from repro.network import Mesh, NetworkConfig


# ------------------------------------------------------- hamiltonian walk
def test_walk_visits_every_node_once():
    walk = hamiltonian_walk((3, 4, 2))
    assert len(walk) == 24
    assert len(set(walk)) == 24


def test_walk_consecutive_nodes_adjacent():
    mesh = Mesh((4, 3, 2))
    walk = hamiltonian_walk(mesh.dims)
    for a, b in zip(walk, walk[1:]):
        assert mesh.distance(a, b) == 1, (a, b)


def test_walk_2x2_example():
    assert hamiltonian_walk((2, 2)) == [(0, 0), (1, 0), (1, 1), (0, 1)]


def test_walk_1d():
    assert hamiltonian_walk((4,)) == [(0,), (1,), (2,), (3,)]


def test_walk_bad_dims():
    with pytest.raises(ValueError):
        hamiltonian_walk(())
    with pytest.raises(ValueError):
        hamiltonian_walk((0, 3))


def test_rank_is_walk_inverse():
    dims = (3, 3)
    walk = hamiltonian_walk(dims)
    rank = hamiltonian_rank(dims)
    for i, coord in enumerate(walk):
        assert rank[coord] == i


@given(st.tuples(st.integers(2, 5), st.integers(2, 5), st.integers(1, 3)))
@settings(max_examples=25, deadline=None)
def test_walk_property(dims):
    mesh = Mesh(dims)
    walk = hamiltonian_walk(dims)
    assert len(walk) == mesh.num_nodes
    for a, b in zip(walk, walk[1:]):
        assert mesh.distance(a, b) == 1


# ------------------------------------------------------------- dual path
def test_dual_path_one_step_two_worms():
    mesh = Mesh((4, 4))
    mc = DualPathMulticast(mesh)
    schedule = mc.schedule((1, 1), [(0, 0), (3, 3), (2, 0)])
    assert schedule.num_steps == 1
    assert len(schedule.steps[0].sends) <= 2
    validate_multicast(schedule, mesh, [(0, 0), (3, 3), (2, 0)])


def test_dual_path_all_up_rank_single_worm():
    mesh = Mesh((4, 4))
    mc = DualPathMulticast(mesh)
    rank = hamiltonian_rank(mesh.dims)
    dests = [d for d in mesh.nodes() if rank[d] > rank[(0, 0)]][:3]
    schedule = mc.schedule((0, 0), dests)
    assert len(schedule.steps[0].sends) == 1


def test_dual_path_destination_at_rank_zero():
    mesh = Mesh((4, 4))
    mc = DualPathMulticast(mesh)
    schedule = mc.schedule((2, 2), [(0, 0)])  # rank 0 — down-path edge case
    validate_multicast(schedule, mesh, [(0, 0)])


def test_dual_path_rejects_bad_destinations():
    mc = DualPathMulticast(Mesh((4, 4)))
    with pytest.raises(ValueError):
        mc.schedule((0, 0), [])
    with pytest.raises(ValueError):
        mc.schedule((0, 0), [(0, 0)])  # only the source itself
    with pytest.raises(ValueError):
        mc.schedule((0, 0), [(9, 9)])


def test_dual_path_source_excluded_silently():
    mesh = Mesh((4, 4))
    schedule = DualPathMulticast(mesh).schedule((1, 1), [(1, 1), (2, 2)])
    validate_multicast(schedule, mesh, [(2, 2)])


@given(
    dims=st.tuples(st.integers(2, 5), st.integers(2, 5)),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_dual_path_property(dims, data):
    mesh = Mesh(dims)
    nodes = list(mesh.nodes())
    source = data.draw(st.sampled_from(nodes))
    dests = data.draw(
        st.lists(st.sampled_from(nodes), min_size=1, max_size=6, unique=True)
    )
    if set(dests) == {source}:
        dests.append(nodes[0] if nodes[0] != source else nodes[-1])
    schedule = DualPathMulticast(mesh).schedule(source, dests)
    validate_multicast(schedule, mesh, dests)


# ------------------------------------------------------------- baselines
def test_unicast_multicast_one_worm_per_destination():
    mesh = Mesh((4, 4))
    schedule = UnicastMulticast(mesh).schedule((0, 0), [(1, 1), (3, 3)])
    assert schedule.total_sends() == 2
    validate_multicast(schedule, mesh, [(1, 1), (3, 3)])


def test_unicast_multicast_rejects_empty():
    with pytest.raises(ValueError):
        UnicastMulticast(Mesh((4, 4))).schedule((0, 0), [(0, 0)])


def test_dual_path_fewer_startups_than_unicast():
    """The multidestination advantage: 2 worms instead of |D|."""
    mesh = Mesh((8, 8))
    dests = [(x, y) for x in range(0, 8, 2) for y in range(0, 8, 2)]
    dual = DualPathMulticast(mesh).schedule((3, 3), dests)
    naive = UnicastMulticast(mesh).schedule((3, 3), dests)
    assert dual.total_sends() <= 2 < naive.total_sends()


def test_dual_path_latency_beats_serialised_unicast():
    """With 1-2 ports, |D| start-ups dominate the naive scheme."""
    mesh = Mesh((8, 8))
    dests = [(x, y) for x in range(8) for y in (0, 7)]
    config = NetworkConfig(ports_per_node=2)
    executor = UnitStepExecutor(mesh, config)
    dual = executor.execute(
        DualPathMulticast(mesh).schedule((3, 3), dests), length_flits=64
    )
    naive = executor.execute(
        UnicastMulticast(mesh).schedule((3, 3), dests), length_flits=64
    )
    assert dual.network_latency < naive.network_latency


def test_validate_multicast_catches_extra_delivery():
    mesh = Mesh((4, 4))
    schedule = UnicastMulticast(mesh).schedule((0, 0), [(1, 1), (2, 2)])
    with pytest.raises(Exception):
        validate_multicast(schedule, mesh, [(1, 1)])  # (2,2) is "extra"
