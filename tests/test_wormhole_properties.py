"""Property-based tests of the wormhole layer's conservation invariants.

Whatever worms do — contend, block, pipeline, multicast — the network
must conserve its resources: every channel released, every port freed,
every delivery recorded exactly once, and time must respect the
analytic lower bounds.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import message_latency
from repro.core import EventDrivenExecutor, get_algorithm
from repro.core.adaptive_broadcast import AdaptiveBroadcast
from repro.network import (
    Mesh,
    Message,
    NetworkConfig,
    NetworkSimulator,
    PathTransmission,
)
from repro.routing import DimensionOrdered, Path

dims2d = st.tuples(st.integers(2, 6), st.integers(2, 6))


def coords_in(dims):
    return st.tuples(*[st.integers(0, d - 1) for d in dims])


@given(
    dims2d.flatmap(
        lambda d: st.tuples(
            st.just(d),
            st.lists(
                st.tuples(coords_in(d), coords_in(d)),
                min_size=1,
                max_size=12,
            ),
            st.integers(1, 200),
        )
    )
)
@settings(max_examples=40, deadline=None)
def test_unicast_storm_conserves_resources(args):
    """Random unicast batches always drain and free everything."""
    dims, pairs, length = args
    mesh = Mesh(dims)
    net = NetworkSimulator(mesh, NetworkConfig(ports_per_node=2))
    dor = DimensionOrdered(mesh)
    processes = []
    sent = 0
    for src, dst in pairs:
        if src == dst:
            continue
        msg = Message(source=src, destinations={dst}, length_flits=length)
        nodes = dor.path(src, dst)
        processes.append(
            PathTransmission(
                net, msg, path=Path(nodes, deliveries=[dst])
            ).start()
        )
        sent += 1
    net.run()
    # Every transmission finished successfully.
    assert all(p.processed and p.ok for p in processes)
    # Conservation: channels idle, ports free, queues empty.
    for channel in net.channels.values():
        assert not channel.busy
        assert channel.queue_length == 0
    for node in net.nodes.values():
        assert node.ports.count == 0
    # Exactly one delivery per sent message.
    deliveries = sum(len(n.deliveries) for n in net.nodes.values())
    assert deliveries == sent


@given(
    dims2d.flatmap(
        lambda d: st.tuples(st.just(d), coords_in(d), coords_in(d), st.integers(1, 500))
    )
)
@settings(max_examples=40, deadline=None)
def test_lone_unicast_matches_analytic_model(args):
    """An uncontended worm's latency equals the closed form exactly."""
    dims, src, dst, length = args
    if src == dst:
        return
    mesh = Mesh(dims)
    config = NetworkConfig(ports_per_node=1)
    net = NetworkSimulator(mesh, config)
    dor = DimensionOrdered(mesh)
    nodes = dor.path(src, dst)
    msg = Message(source=src, destinations={dst}, length_flits=length)
    proc = PathTransmission(net, msg, path=Path(nodes, deliveries=[dst])).start()
    result = net.run(until=proc)
    expected = message_latency(config, hops=len(nodes) - 1, length_flits=length)
    assert result.network_latency == pytest.approx(expected)


@given(
    name=st.sampled_from(["RD", "EDN", "DB", "AB"]),
    dims=st.tuples(st.integers(2, 4), st.integers(2, 4), st.integers(1, 4)),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_broadcast_conserves_resources(name, dims, data):
    """After any broadcast drains, the network is pristine."""
    source = data.draw(st.tuples(*[st.integers(0, d - 1) for d in dims]))
    mesh = Mesh(dims)
    algo = get_algorithm(name)(mesh)
    net = NetworkSimulator(mesh, NetworkConfig(ports_per_node=algo.ports_required))
    routing = AdaptiveBroadcast.make_routing(mesh) if algo.adaptive else None
    outcome = EventDrivenExecutor(net, adaptive_routing=routing).execute(
        algo.schedule(source), 16
    )
    net.run()  # drain any trailing bookkeeping
    assert outcome.delivered_count == mesh.num_nodes - 1
    for channel in net.channels.values():
        assert not channel.busy
        assert channel.queue_length == 0
    for node in net.nodes.values():
        assert node.ports.count == 0
    # Each non-source node got exactly one copy.
    for node in net.nodes.values():
        expected = 0 if node.coord == source else 1
        assert len(node.deliveries) == expected, node.coord


@given(
    dims=st.tuples(st.integers(2, 4), st.integers(2, 4), st.integers(2, 4)),
    data=st.data(),
    length=st.integers(1, 200),
)
@settings(max_examples=25, deadline=None)
def test_broadcast_latency_bounded_below_by_floor(dims, data, length):
    from repro.analysis import broadcast_latency_lower_bound, distance_lower_bound
    from repro.core import BarrierStepExecutor

    name = data.draw(st.sampled_from(["RD", "EDN", "DB", "AB"]))
    source = data.draw(st.tuples(*[st.integers(0, d - 1) for d in dims]))
    mesh = Mesh(dims)
    algo = get_algorithm(name)(mesh)
    config = NetworkConfig(ports_per_node=algo.ports_required)
    net = NetworkSimulator(mesh, config)
    routing = AdaptiveBroadcast.make_routing(mesh) if algo.adaptive else None
    schedule = algo.schedule(source)
    event = EventDrivenExecutor(net, adaptive_routing=routing).execute(
        schedule, length
    )
    # Semantics-independent floor bounds the event-driven execution...
    causal_floor = distance_lower_bound(mesh, source, config, length)
    assert event.network_latency >= causal_floor - 1e-9
    # ...while the steps floor bounds step-synchronised execution.
    barrier = BarrierStepExecutor(mesh, config).execute(schedule, length)
    steps_floor = broadcast_latency_lower_bound(name, dims, config, length)
    assert barrier.network_latency >= steps_floor - 1e-9


@given(st.integers(1, 64), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_multidestination_delivery_times_monotone(length, span):
    """CPR deliveries along one worm arrive in path order."""
    mesh = Mesh((8, 8))
    net = NetworkSimulator(mesh, NetworkConfig(ports_per_node=1))
    nodes = [(x, 0) for x in range(min(span + 1, 8))]
    if len(nodes) < 2:
        return
    msg = Message(
        source=nodes[0], destinations=set(nodes[1:]), length_flits=length
    )
    proc = PathTransmission(
        net, msg, path=Path(nodes, deliveries=nodes[1:])
    ).start()
    result = net.run(until=proc)
    times = [result.arrivals[n] for n in nodes[1:]]
    assert times == sorted(times)
    assert len(times) == len(set(times))
