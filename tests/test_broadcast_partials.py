"""Exactness of the broadcast-cell algebra (`repro.metrics.partial`).

The load-bearing property behind sharded broadcast cells: however a
cell's per-source sample sequence is cut into slices — and in whatever
order the slices come back — merging the slice partials reproduces the
unsliced cell bit for bit, across every shard count.  Mirrors
`tests/test_partial_stats.py` for the broadcast-side partials; every
assertion is exact equality, never approx.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    BroadcastPartial,
    merge_broadcast_partials,
    split_broadcast_results,
)


# ------------------------------------------------------------ strategies
def finite_floats():
    return st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    )


@st.composite
def source_result(draw, barrier):
    result = {
        "source": draw(
            st.lists(
                st.integers(min_value=0, max_value=15), min_size=3, max_size=3
            )
        ),
        "network_latency": draw(finite_floats()),
        "mean_latency": draw(finite_floats()),
        "cv": draw(finite_floats()),
        "delivered": draw(st.integers(min_value=0, max_value=4096)),
    }
    if barrier:
        result["barrier_cv"] = draw(finite_floats())
        result["barrier_network_latency"] = draw(finite_floats())
    return result


@st.composite
def cell_and_cuts(draw):
    barrier = draw(st.booleans())
    results = draw(
        st.lists(source_result(barrier), min_size=0, max_size=40)
    )
    n_cuts = draw(st.integers(min_value=0, max_value=8))
    cuts = [
        draw(st.integers(min_value=0, max_value=len(results)))
        for _ in range(n_cuts)
    ]
    return results, cuts


# ------------------------------------------------------------- properties
@settings(max_examples=200, deadline=None)
@given(cell_and_cuts())
def test_merge_of_any_split_is_exact(case):
    """merge(split(run)) == run, bit for bit, for every cut pattern —
    i.e. across every shard count and slice shape a plan could pick."""
    results, cuts = case
    serial = BroadcastPartial.from_results(results)
    parts = split_broadcast_results(results, cuts)
    merged = merge_broadcast_partials(reversed(parts))  # order-free
    assert merged == serial


@settings(max_examples=100, deadline=None)
@given(cell_and_cuts())
def test_split_round_trips_per_source_results(case):
    """Exploding the merged partial yields the very per-source dicts
    the slices were built from, in replication order."""
    results, cuts = case
    merged = merge_broadcast_partials(split_broadcast_results(results, cuts))
    assert merged.results() == [
        {**r, "source": list(r["source"])} for r in results
    ]
    assert merged.count == len(results)
    assert merged.offset == 0


@settings(max_examples=100, deadline=None)
@given(cell_and_cuts())
def test_partial_round_trips_through_json(case):
    results, _ = case
    stat = BroadcastPartial.from_results(results, offset=3)
    restored = BroadcastPartial.from_dict(
        json.loads(json.dumps(stat.to_dict()))
    )
    assert restored == stat


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=40), st.integers(1, 40))
def test_every_even_shard_count_merges_exactly(sources, shards):
    """The shard planner's contiguous slices specifically: for every
    (cell size, fan-out) pair the tiled slices merge back exactly."""
    from repro.campaigns.shards import shard_source_slices

    if shards > sources:
        with pytest.raises(ValueError, match="--shards"):
            shard_source_slices(sources, shards)
        return
    results = [
        {
            "source": [i, 0, 0],
            "network_latency": float(i) * 1.25,
            "mean_latency": float(i) * 0.5,
            "cv": float(i) / 7.0,
            "delivered": i,
        }
        for i in range(sources)
    ]
    slices = shard_source_slices(sources, shards)
    assert [c for _, c in slices] == sorted(
        (c for _, c in slices), reverse=True
    )
    assert sum(c for _, c in slices) == sources
    parts = [
        BroadcastPartial.from_results(results[o : o + c], offset=o)
        for o, c in slices
    ]
    assert merge_broadcast_partials(parts) == BroadcastPartial.from_results(
        results
    )


# ----------------------------------------------------------------- edges
def _partial(n, offset=0, barrier=False):
    return BroadcastPartial.from_results(
        [
            {
                "source": [i, 0, 0],
                "network_latency": 1.0,
                "mean_latency": 0.5,
                "cv": 0.1,
                "delivered": 8,
                **(
                    {"barrier_cv": 0.2, "barrier_network_latency": 2.0}
                    if barrier
                    else {}
                ),
            }
            for i in range(n)
        ],
        offset=offset,
    )


def test_merge_rejects_gaps_overlaps_and_mixed_barrier():
    a = _partial(2, offset=0)
    with pytest.raises(ValueError, match="gapped"):
        merge_broadcast_partials([a, _partial(1, offset=5)])
    with pytest.raises(ValueError, match="overlapping"):
        merge_broadcast_partials([a, _partial(1, offset=1)])
    with pytest.raises(ValueError, match="barrier"):
        merge_broadcast_partials([a, _partial(1, offset=2, barrier=True)])
    with pytest.raises(ValueError, match="nothing"):
        merge_broadcast_partials([])


def test_partial_validates_series_lengths_and_barrier_pairing():
    with pytest.raises(ValueError, match="inconsistent"):
        BroadcastPartial(
            offset=0,
            sources=((0, 0, 0),),
            network_latency=(1.0, 2.0),  # wrong length
            mean_latency=(0.5,),
            cv=(0.1,),
            delivered=(8,),
        )
    with pytest.raises(ValueError, match="together"):
        BroadcastPartial(
            offset=0,
            sources=((0, 0, 0),),
            network_latency=(1.0,),
            mean_latency=(0.5,),
            cv=(0.1,),
            delivered=(8,),
            barrier_cv=(0.2,),  # missing barrier_network_latency
        )
    with pytest.raises(ValueError, match="mix"):
        BroadcastPartial.from_results(
            [
                {
                    "source": [0, 0, 0],
                    "network_latency": 1.0,
                    "mean_latency": 0.5,
                    "cv": 0.1,
                    "delivered": 8,
                },
                {
                    "source": [1, 0, 0],
                    "network_latency": 1.0,
                    "mean_latency": 0.5,
                    "cv": 0.1,
                    "delivered": 8,
                    "barrier_cv": 0.2,
                    "barrier_network_latency": 2.0,
                },
            ]
        )


def test_empty_slices_merge_away():
    """A plan may cut twice at the same index; empty slices carry no
    samples and must not break contiguity."""
    results = _partial(3).results()
    parts = split_broadcast_results(results, [1, 1, 3])
    assert merge_broadcast_partials(parts) == BroadcastPartial.from_results(
        results
    )
