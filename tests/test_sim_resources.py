"""Unit tests for resources and stores (`repro.sim.resources`)."""

import pytest

from repro.sim import Environment, PriorityResource, Resource, Store


# ---------------------------------------------------------------- Resource
def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_immediate_grant_when_free():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    assert req.triggered
    assert res.count == 1


def test_fifo_queueing_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, res, label, hold):
        with res.request() as req:
            yield req
            order.append((label, env.now))
            yield env.timeout(hold)

    for label, hold in [("a", 2.0), ("b", 1.0), ("c", 1.0)]:
        env.process(user(env, res, label, hold))
    env.run()
    assert order == [("a", 0.0), ("b", 2.0), ("c", 3.0)]


def test_release_is_idempotent():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    res.release(req)
    res.release(req)  # no error
    assert res.count == 0


def test_cancel_waiting_request_dequeues():
    env = Environment()
    res = Resource(env, capacity=1)
    first = res.request()
    second = res.request()
    assert res.queue_length == 1
    second.cancel()
    assert res.queue_length == 0
    res.release(first)
    assert not second.triggered


def test_multi_capacity_concurrent_grants():
    env = Environment()
    res = Resource(env, capacity=3)
    active = []

    def user(env, res, label):
        with res.request() as req:
            yield req
            active.append(label)
            yield env.timeout(1.0)

    for label in range(5):
        env.process(user(env, res, label))
    env.run(until=0.5)
    assert len(active) == 3


def test_grants_counter():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    for _ in range(4):
        env.process(user(env, res))
    env.run()
    assert res.grants == 4


def test_utilisation_tracking():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res):
        yield env.timeout(1.0)  # idle 0..1
        with res.request() as req:
            yield req
            yield env.timeout(3.0)  # busy 1..4

    env.process(user(env, res))
    env.run()
    assert res.utilisation() == pytest.approx(0.75)


# ---------------------------------------------------------- PriorityResource
def test_priority_resource_orders_waiters():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def user(env, res, label, prio):
        with res.request(priority=prio) as req:
            yield req
            order.append(label)
            yield env.timeout(1.0)

    def spawn(env):
        env.process(user(env, res, "first", 5))  # grabs the slot
        yield env.timeout(0.1)
        env.process(user(env, res, "low", 10))
        env.process(user(env, res, "high", 1))
        env.process(user(env, res, "mid", 5))

    env.process(spawn(env))
    env.run()
    assert order == ["first", "high", "mid", "low"]


def test_priority_resource_cancel_waiter():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    holder = res.request(priority=0)
    waiter = res.request(priority=1)
    assert res.queue_length == 1
    res.release(waiter)
    assert res.queue_length == 0
    res.release(holder)
    assert not waiter.triggered


# ---------------------------------------------------------------- Store
def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("x")
    got = store.get()
    env.run()
    assert got.value == "x"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    received = []

    def consumer(env, store):
        item = yield store.get()
        received.append((env.now, item))

    def producer(env, store):
        yield env.timeout(2.0)
        yield store.put("msg")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert received == [(2.0, "msg")]


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    for item in "abc":
        store.put(item)
    out = [store.get().value for _ in range(3)]
    assert out == ["a", "b", "c"]


def test_bounded_store_blocks_putter():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env, store):
        yield store.put("one")
        log.append(("put one", env.now))
        yield store.put("two")
        log.append(("put two", env.now))

    def consumer(env, store):
        yield env.timeout(5.0)
        item = yield store.get()
        log.append((f"got {item}", env.now))

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert ("put one", 0.0) in log
    assert ("put two", 5.0) in log


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)
