"""Tests for the batched broadcast engine (`repro.core.batch_broadcast`).

The engine's whole contract is *bit-identical results at vector
speed*: every per-source outcome — arrival dict (insertion order
included), derived latency statistics, unit-record floats and the
content hash of the record's spec — must match the per-source
event-driven engine exactly, with ineligible sources (adaptive
schedules, faulty channels, walks that outrun their first delivery)
silently falling back per source.  These tests pin that contract, the
engine knob's resolution order, and the cost model's engine feature.
"""

import dataclasses
import os

import pytest

from repro.campaigns import UnitSpec, execute_unit, freeze_params
from repro.campaigns.costmodel import (
    FEATURE_NAMES,
    CostModel,
    cost_features,
)
from repro.campaigns.units import (
    BROADCAST_ENGINE_ENV,
    ENGINES,
    broadcast_engine,
    set_broadcast_engine,
)
from repro.core.batch_broadcast import run_batch_broadcasts
from repro.experiments.common import random_sources, run_single_broadcasts
from repro.network.faults import FaultyChannelError
from repro.obs.simprof import SimProfile


@pytest.fixture(autouse=True)
def _clean_engine_state(monkeypatch):
    monkeypatch.delenv(BROADCAST_ENGINE_ENV, raising=False)
    previous = set_broadcast_engine(None)
    yield
    set_broadcast_engine(previous)


def assert_outcomes_identical(batched, event):
    """Bit-identical outcomes.

    The arrivals mapping must agree exactly and its *value sequence*
    must be bitwise identical in insertion order — when two worms
    deliver at the same instant the event heap and the sweep may
    order the tied (bitwise-equal) floats differently, which no
    downstream statistic can observe.
    """
    assert len(batched) == len(event)
    for b, e in zip(batched, event):
        assert b.arrivals == e.arrivals
        assert list(b.arrivals.values()) == list(e.arrivals.values())
        assert dataclasses.asdict(b) == dataclasses.asdict(e)
        assert list(b.latencies()) == list(e.latencies())
        assert b.mean_latency == e.mean_latency
        assert b.network_latency == e.network_latency
        assert b.coefficient_of_variation == e.coefficient_of_variation


# ------------------------------------------------------------ exactness
@pytest.mark.parametrize("dims", [(4, 4), (8, 8), (3, 5), (4, 4, 4)])
@pytest.mark.parametrize("algorithm", ["RD", "EDN", "DB"])
def test_batched_matches_event_engine(dims, algorithm):
    sources = random_sources(dims, 6, seed=1)
    event = run_single_broadcasts(algorithm, dims, sources, 512)
    batched = run_batch_broadcasts(algorithm, dims, sources, 512)
    assert_outcomes_identical(batched, event)


def test_batched_matches_event_engine_properties():
    hypothesis = pytest.importorskip("hypothesis")
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=20, deadline=None)
    @given(
        dims=st.sampled_from([(4, 4), (5, 3), (2, 6), (8, 8), (3, 3, 3)]),
        algorithm=st.sampled_from(["RD", "EDN", "DB", "AB"]),
        length=st.sampled_from([4, 32, 128, 512]),
        seed=st.integers(min_value=0, max_value=50),
        count=st.integers(min_value=1, max_value=5),
        max_dest=st.sampled_from([None, 1, 3]),
    )
    def check(dims, algorithm, length, seed, count, max_dest):
        sources = random_sources(dims, count, seed)
        kwargs = dict(max_destinations_per_path=max_dest)
        event = run_single_broadcasts(
            algorithm, dims, sources, length, **kwargs
        )
        batched = run_batch_broadcasts(
            algorithm, dims, sources, length, **kwargs
        )
        assert_outcomes_identical(batched, event)

    check()


def test_short_message_walks_fall_back_and_still_match():
    # With L=4 flits most DB worms' walks outrun their first delivery
    # (remaining hops >= L-1), failing the sweep's wave-eligibility
    # check *after* planning — the fallback must be taken and the
    # results must still be identical.
    dims, length = (8, 8), 4
    sources = random_sources(dims, 8, seed=2)
    profile = SimProfile()
    event = run_single_broadcasts("DB", dims, sources, length)
    batched = run_batch_broadcasts(
        "DB", dims, sources, length, profile=profile
    )
    assert_outcomes_identical(batched, event)
    assert profile.batch_sources_fallback > 0
    assert (
        profile.batch_sources_batched + profile.batch_sources_fallback
        == len(sources)
    )


def test_adaptive_algorithm_falls_back_whole_batch():
    dims = (4, 4)
    sources = random_sources(dims, 4, seed=0)
    profile = SimProfile()
    event = run_single_broadcasts("AB", dims, sources, 128)
    batched = run_batch_broadcasts(
        "AB", dims, sources, 128, profile=profile
    )
    assert_outcomes_identical(batched, event)
    assert profile.batch_sources_batched == 0
    assert profile.batch_sources_fallback == len(sources)
    assert profile.batch_batched_ratio == 0.0


# --------------------------------------------------------------- faults
def test_faulty_topology_forces_event_fallback():
    # Any declared fault disqualifies the whole batch: the event
    # engine is the defined semantics for faulty topologies.  A fault
    # on a channel no schedule uses must leave results identical to
    # the pristine run while every source reports as fallback.
    from repro.core.registry import get_algorithm
    from repro.network.topology import Mesh
    from repro.sim.batch import plan_broadcast

    dims = (4, 4)
    sources = [(0, 0), (1, 1)]
    mesh = Mesh(dims)
    nodes = list(mesh.nodes())
    node_index = {coord: i for i, coord in enumerate(nodes)}
    algorithm = get_algorithm("DB")(mesh)
    used = set()
    for source in sources:
        plan = plan_broadcast(
            algorithm.schedule(source), node_index, len(nodes)
        )
        used.update(int(k) for k in plan.chan_key)

    def key(u, v):
        return node_index[u] * len(nodes) + node_index[v]

    unused = None
    for u in nodes:
        for axis in range(len(dims)):
            v = list(u)
            v[axis] += 1
            v = tuple(v)
            if v in node_index and key(u, v) not in used and (
                key(v, u) not in used
            ):
                unused = (u, v)
                break
        if unused:
            break
    assert unused is not None, "every channel pair is in use"

    profile = SimProfile()
    pristine = run_single_broadcasts("DB", dims, sources, 64)
    batched = run_batch_broadcasts(
        "DB", dims, sources, 64, faults=[unused], profile=profile
    )
    assert_outcomes_identical(batched, pristine)
    assert profile.batch_sources_batched == 0
    assert profile.batch_sources_fallback == len(sources)


def test_faulty_channel_on_path_raises_like_event_engine():
    dims = (4, 4)
    with pytest.raises(FaultyChannelError):
        run_batch_broadcasts(
            "DB", dims, [(0, 0)], 64, faults=[((0, 0), (0, 1))]
        )


# ---------------------------------------------------------- engine knob
def test_engine_resolution_order(monkeypatch):
    assert broadcast_engine() == "auto"
    monkeypatch.setenv(BROADCAST_ENGINE_ENV, "event")
    assert broadcast_engine() == "event"
    monkeypatch.setenv(BROADCAST_ENGINE_ENV, "bogus")
    assert broadcast_engine() == "auto"
    monkeypatch.setenv(BROADCAST_ENGINE_ENV, "event")
    previous = set_broadcast_engine("batched")
    assert previous is None
    assert broadcast_engine() == "batched"
    assert set_broadcast_engine(previous) == "batched"
    assert broadcast_engine() == "event"


def test_set_broadcast_engine_rejects_unknown():
    with pytest.raises(ValueError):
        set_broadcast_engine("vectorised")
    assert "vectorised" not in ENGINES


def cell_spec(**overrides) -> UnitSpec:
    fields = dict(
        experiment="fig1",
        kind="broadcast-cell",
        algorithm="DB",
        dims=(4, 4),
        length_flits=128,
        seed=0,
        replication=0,
        params=freeze_params(sources_count=5, startup_latency=1.5),
    )
    fields.update(overrides)
    return UnitSpec(**fields)


def test_execute_unit_engine_records_identical():
    # The per-unit engine bracket: same spec, same unit hash, same
    # result dict — bytes included — whichever engine executes it.
    event = execute_unit(cell_spec(), engine="event")
    batched = execute_unit(cell_spec(), engine="batched")
    auto = execute_unit(cell_spec(), engine="auto")
    assert event.unit_hash == batched.unit_hash == auto.unit_hash
    assert event.result == batched.result == auto.result
    assert broadcast_engine() == "auto"  # bracket restored the default


def test_execute_unit_rejects_unknown_engine():
    with pytest.raises(ValueError):
        execute_unit(cell_spec(), engine="vectorised")


def test_engine_not_part_of_unit_hash():
    # Engine is pure work division (like a cell's shard fan-out):
    # the spec carries no engine field, so records produced by any
    # engine are interchangeable under one content hash.
    assert "engine" not in cell_spec().as_dict().get("params", {})


# ----------------------------------------------------------- cost model
def test_cost_features_engine_indicator():
    assert FEATURE_NAMES[-1] == "engine_batched"
    spec = cell_spec()
    assert cost_features(spec, engine="event")[-1] == 0.0
    assert cost_features(spec, engine="batched")[-1] == 1.0
    assert cost_features(spec, engine="auto")[-1] == 1.0
    ab = cell_spec(algorithm="AB")
    assert cost_features(ab, engine="batched")[-1] == 0.0
    traffic = UnitSpec(
        experiment="fig3",
        kind="traffic",
        algorithm="DB",
        dims=(4, 4),
        length_flits=128,
        seed=0,
        load=1.0,
        params=freeze_params(batch_size=5, num_batches=3),
    )
    assert cost_features(traffic, engine="batched")[-1] == 0.0


def test_cost_features_default_engine_tracks_process_knob():
    spec = cell_spec()
    set_broadcast_engine("event")
    assert cost_features(spec)[-1] == 0.0
    set_broadcast_engine("batched")
    assert cost_features(spec)[-1] == 1.0


def test_legacy_cost_model_weights_still_predict():
    # A model fitted before the engine feature was appended has one
    # weight fewer; zip truncation treats the missing weight as zero,
    # so predictions are unchanged rather than erroring.
    legacy = CostModel(
        weights=(0.1,) * (len(FEATURE_NAMES) - 1), samples=10, r_squared=0.9
    )
    full = CostModel(
        weights=(0.1,) * (len(FEATURE_NAMES) - 1) + (0.0,),
        samples=10,
        r_squared=0.9,
    )
    spec = cell_spec()
    assert legacy.predict(spec, engine="batched") == full.predict(
        spec, engine="batched"
    )


def test_legacy_cost_model_file_rejected_with_clear_error():
    with pytest.raises(ValueError):
        CostModel.from_dict(
            {
                "features": list(FEATURE_NAMES[:-1]),
                "weights": [0.1] * (len(FEATURE_NAMES) - 1),
            }
        )


# ------------------------------------------------------------ end to end
def test_fig1_smoke_rows_identical_across_engines():
    from repro.experiments.fig1 import run_fig1

    event = run_fig1("smoke", 0, engine="event")
    batched = run_fig1("smoke", 0, engine="batched")
    assert event == batched
