"""Tests for the command-line interface (`repro.cli`)."""

import pytest

from repro.cli import _parse_coord, _parse_dims, main


def test_parse_dims():
    assert _parse_dims("8x8x8") == (8, 8, 8)
    assert _parse_dims("4X4") == (4, 4)
    import argparse

    with pytest.raises(argparse.ArgumentTypeError):
        _parse_dims("8x8xa")


def test_parse_coord():
    assert _parse_coord("3,4,5") == (3, 4, 5)
    import argparse

    with pytest.raises(argparse.ArgumentTypeError):
        _parse_coord("3;4")


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out and "table2" in out


def test_cli_list_one_experiment_per_line(capsys):
    from repro.experiments.runner import EXPERIMENTS

    main(["list"])
    lines = capsys.readouterr().out.strip().splitlines()
    # header + one line per experiment + the campaign subcommand
    assert len(lines) == 1 + len(EXPERIMENTS) + 1
    assert any(
        line.split()[0] == "fig1" and "latency" in line for line in lines
    )
    assert any(line.split()[0] == "campaign" for line in lines)


def test_cli_broadcast(capsys):
    assert main(["broadcast", "--algo", "AB", "--dims", "4x4x4"]) == 0
    out = capsys.readouterr().out
    assert "network latency" in out
    assert "63 nodes" in out


def test_cli_broadcast_custom_source(capsys):
    assert main(
        ["broadcast", "--algo", "DB", "--dims", "4x4", "--source", "1,2",
         "--flits", "16"]
    ) == 0
    out = capsys.readouterr().out
    assert "(1, 2)" in out


def test_cli_compare(capsys):
    assert main(["compare", "--dims", "4x4x4", "--flits", "32"]) == 0
    out = capsys.readouterr().out
    assert "RD" in out and "AB" in out and "steps" in out


def test_cli_experiment_table2(capsys):
    assert main(["table2", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "ABIMR%" in out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_rejects_unknown_algo():
    with pytest.raises(SystemExit):
        main(["broadcast", "--algo", "XYZ"])


def test_cli_broadcast_profile(capsys):
    assert main(
        ["broadcast", "--algo", "DB", "--dims", "4x4x4", "--profile"]
    ) == 0
    out = capsys.readouterr().out
    assert "kernel profile" in out
    assert "events dispatched" in out
    assert "wormhole hops" in out


def test_cli_campaign_traced_run_trace_and_status(tmp_path, capsys):
    store = str(tmp_path / "fig1.sqlite")
    spool = str(tmp_path / "spool")
    args = ["fig1", "--scale", "smoke", "--store", store]

    # trace before any run: nothing to export
    assert main(["campaign", "trace"] + args) == 1
    assert "no trace" in capsys.readouterr().out

    assert main(["campaign", "run", "--trace", spool] + args) == 0
    out = capsys.readouterr().out
    assert "trace spooled to " + spool in out

    assert main(["campaign", "trace", "--trace", spool] + args) == 0
    out = capsys.readouterr().out
    assert "units traced: 32" in out and "exported" in out
    assert (tmp_path / "spool" / "trace.json").is_file()

    assert main(["campaign", "status", "--trace", spool] + args) == 0
    out = capsys.readouterr().out
    assert "32/32" in out  # the pinned headline is untouched
    assert "traced: 32 executed unit(s)" in out

    # Untraced runs print no trace line at all.
    assert main(["campaign", "run"] + args) == 0
    assert "trace" not in capsys.readouterr().out


def test_cli_campaign_status_json(tmp_path, capsys):
    import json

    store = str(tmp_path / "fig1.jsonl")
    args = ["fig1", "--scale", "smoke", "--store", store]
    assert main(["campaign", "run"] + args) == 0
    capsys.readouterr()
    assert main(["campaign", "status", "--json"] + args) == 0
    (payload,) = json.loads(capsys.readouterr().out)
    assert payload["campaign"] == "fig1-smoke-s0"
    assert payload["completed"] == payload["total"] == 32
    assert payload["trace"]["available"] is False
    assert len(payload["units"]) == 32
    unit = payload["units"][0]
    assert set(unit) >= {"unit", "hash", "state", "elapsed_s"}
    assert unit["state"] == "completed"
