"""Unit tests for RNG streams and monitors (`repro.sim.rng`, `repro.sim.monitor`)."""

import math

import numpy as np
import pytest

from repro.sim import Monitor, RandomStreams


# ------------------------------------------------------------ RandomStreams
def test_same_seed_same_stream():
    a = RandomStreams(seed=7)["traffic"].random(10)
    b = RandomStreams(seed=7)["traffic"].random(10)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1)["traffic"].random(10)
    b = RandomStreams(seed=2)["traffic"].random(10)
    assert not np.array_equal(a, b)


def test_streams_are_independent_of_creation_order():
    s1 = RandomStreams(seed=3)
    _ = s1["a"].random(100)  # burn numbers on another stream
    v1 = s1["b"].random(5)

    s2 = RandomStreams(seed=3)
    v2 = s2["b"].random(5)  # "b" created first this time
    assert np.array_equal(v1, v2)


def test_named_streams_differ_from_each_other():
    s = RandomStreams(seed=9)
    assert not np.array_equal(s["x"].random(10), s["y"].random(10))


def test_stream_is_cached():
    s = RandomStreams(seed=0)
    assert s["t"] is s["t"]


def test_exponential_helper_mean():
    s = RandomStreams(seed=11)
    draws = [s.exponential("arr", rate=2.0) for _ in range(5000)]
    assert np.mean(draws) == pytest.approx(0.5, rel=0.1)


def test_exponential_invalid_rate():
    with pytest.raises(ValueError):
        RandomStreams(seed=0).exponential("x", rate=0.0)


def test_choice_index_bounds():
    s = RandomStreams(seed=5)
    for _ in range(100):
        assert 0 <= s.choice_index("c", 7) < 7
    with pytest.raises(ValueError):
        s.choice_index("c", 0)


# ---------------------------------------------------------------- Monitor
def test_monitor_mean_std():
    m = Monitor("lat")
    for t, v in enumerate([2.0, 4.0, 6.0]):
        m.record(float(t), v)
    assert m.mean() == pytest.approx(4.0)
    assert m.std() == pytest.approx(np.std([2.0, 4.0, 6.0]))


def test_monitor_cv():
    m = Monitor()
    for t, v in enumerate([1.0, 2.0, 3.0]):
        m.record(float(t), v)
    expected = np.std([1, 2, 3]) / 2.0
    assert m.coefficient_of_variation() == pytest.approx(expected)


def test_monitor_cv_zero_mean():
    m = Monitor()
    m.record(0.0, 0.0)
    m.record(1.0, 0.0)
    assert m.coefficient_of_variation() == 0.0


def test_monitor_cv_zero_mean_nonzero_std_is_inf():
    m = Monitor()
    m.record(0.0, -1.0)
    m.record(1.0, 1.0)
    assert math.isinf(m.coefficient_of_variation())


def test_monitor_requires_time_order():
    m = Monitor()
    m.record(5.0, 1.0)
    with pytest.raises(ValueError):
        m.record(4.0, 1.0)


def test_monitor_empty_stats_raise():
    m = Monitor()
    with pytest.raises(ValueError):
        m.mean()
    with pytest.raises(ValueError):
        m.time_average()


def test_monitor_since_filters():
    m = Monitor()
    for t in range(10):
        m.record(float(t), float(t))
    late = m.since(5.0)
    assert len(late) == 5
    assert late.minimum() == 5.0


def test_monitor_time_average_piecewise_constant():
    m = Monitor()
    m.record(0.0, 1.0)   # value 1 on [0, 2)
    m.record(2.0, 3.0)   # value 3 on [2, 4]
    assert m.time_average(until=4.0) == pytest.approx(2.0)


def test_monitor_time_average_until_before_last_raises():
    m = Monitor()
    m.record(0.0, 1.0)
    m.record(2.0, 3.0)
    with pytest.raises(ValueError):
        m.time_average(until=1.0)


def test_monitor_rate():
    m = Monitor()
    for t in range(5):
        m.record(float(t) * 2.0, 0.0)  # 5 obs over 8 time units
    assert m.rate() == pytest.approx(4 / 8)


def test_monitor_clear():
    m = Monitor()
    m.record(0.0, 1.0)
    m.clear()
    assert len(m) == 0
