"""Tests for steady-state detection (`repro.metrics.steady_state`)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.steady_state import is_steady, mser_truncation, truncate_warmup


def transient_then_steady(transient=50, steady=300, seed=0):
    """Cold-start ramp (low values) followed by stationary noise."""
    rng = np.random.default_rng(seed)
    ramp = np.linspace(1.0, 10.0, transient)
    flat = 10.0 + rng.normal(0, 0.3, steady)
    return np.concatenate([ramp, flat])


# ------------------------------------------------------------------ MSER
def test_mser_cuts_the_transient():
    data = transient_then_steady()
    cut = mser_truncation(data)
    assert 20 <= cut <= 120  # removes (most of) the 50-point ramp
    assert np.mean(data[cut:]) == pytest.approx(10.0, abs=0.3)


def test_mser_no_cut_for_stationary_data():
    rng = np.random.default_rng(1)
    data = 5.0 + rng.normal(0, 0.1, 400)
    cut = mser_truncation(data)
    assert cut <= 40  # nothing systematic to remove


def test_mser_short_series_returns_zero():
    assert mser_truncation([1.0, 2.0, 3.0]) == 0


def test_mser_respects_max_cut_fraction():
    data = transient_then_steady(transient=300, steady=100)
    cut = mser_truncation(data, max_cut_fraction=0.25)
    assert cut <= 0.25 * len(data) + 5


def test_mser_validation():
    with pytest.raises(ValueError):
        mser_truncation([1.0] * 20, batch=0)
    with pytest.raises(ValueError):
        mser_truncation([1.0] * 20, max_cut_fraction=1.5)


def test_truncate_warmup_round_trip():
    data = transient_then_steady()
    cut, tail = truncate_warmup(data)
    assert len(tail) == len(data) - cut
    assert tail.mean() == pytest.approx(10.0, abs=0.3)


@given(st.lists(st.floats(0.1, 100.0), min_size=10, max_size=200))
@settings(max_examples=40)
def test_mser_cut_is_within_bounds(values):
    cut = mser_truncation(values)
    assert 0 <= cut <= len(values) * 0.5 + 5


# ----------------------------------------------------------------- steady
def test_is_steady_on_flat_series():
    rng = np.random.default_rng(2)
    data = 7.0 + rng.normal(0, 0.05, 100)
    assert is_steady(data, window=20, tolerance=0.05)


def test_is_steady_rejects_trending_series():
    data = np.linspace(1.0, 50.0, 100)
    assert not is_steady(data, window=20, tolerance=0.05)


def test_is_steady_needs_two_windows():
    assert not is_steady([1.0] * 10, window=20)


def test_is_steady_validation():
    with pytest.raises(ValueError):
        is_steady([1.0] * 50, window=0)
    with pytest.raises(ValueError):
        is_steady([1.0] * 50, tolerance=0.0)


def test_steady_state_on_simulated_traffic():
    """End to end: the mixed-traffic latency stream stabilises."""
    from repro.network import Mesh
    from repro.traffic import MixedTrafficConfig, MixedTrafficSimulation

    sim = MixedTrafficSimulation(
        Mesh((4, 4, 2)),
        "DB",
        MixedTrafficConfig(
            load_messages_per_ms=2.0,
            batch_size=40,
            num_batches=5,
            discard=1,
            seed=4,
            max_sim_time_us=200_000,
        ),
    )
    sim.run()
    series = sim.latencies.values("all")
    assert len(series) == 200
    cut, tail = truncate_warmup(series)
    assert len(tail) >= 100
    assert is_steady(tail, window=40, tolerance=0.5)
