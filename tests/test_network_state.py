"""Tests for network-level bookkeeping: config, statistics, hooks."""

import pytest

from repro.network import (
    Mesh,
    Message,
    NetworkConfig,
    NetworkSimulator,
    PathTransmission,
)
from repro.network.message import DeliveryRecord
from repro.routing import Path


# ------------------------------------------------------------- config
def test_network_config_validation():
    with pytest.raises(ValueError):
        NetworkConfig(startup_latency=-1.0)
    with pytest.raises(ValueError):
        NetworkConfig(flit_time=0.0)
    with pytest.raises(ValueError):
        NetworkConfig(router_delay=-0.1)
    with pytest.raises(ValueError):
        NetworkConfig(ports_per_node=0)


def test_network_config_timing_view():
    config = NetworkConfig(flit_time=0.01, router_delay=0.002)
    assert config.timing.header_hop_time == pytest.approx(0.012)


def test_paper_constants_are_defaults():
    config = NetworkConfig()
    assert config.startup_latency == 1.5
    assert config.flit_time == 0.003


# ------------------------------------------------------------- wiring
def test_simulator_builds_all_nodes_and_channels():
    net = NetworkSimulator(Mesh((3, 3)))
    assert len(net.nodes) == 9
    assert len(net.channels) == 2 * (2 * 3) * 2  # 24 directed channels
    assert net.num_nodes == 9


def test_node_and_channel_lookup():
    net = NetworkSimulator(Mesh((3, 3)))
    assert net.node((1, 1)).coord == (1, 1)
    assert net.channel((0, 0), (1, 0)).src == (0, 0)
    with pytest.raises(KeyError):
        net.channel((0, 0), (2, 2))  # not adjacent
    with pytest.raises(KeyError):
        net.node((9, 9))


def test_channel_load_oracle_counts_queue():
    net = NetworkSimulator(
        Mesh((3, 3)), NetworkConfig(ports_per_node=3, startup_latency=0.0)
    )
    path = Path([(0, 0), (1, 0)])
    for _ in range(3):
        msg = Message(source=(0, 0), destinations={(1, 0)}, length_flits=500)
        PathTransmission(net, msg, path=path).start()
    net.run(until=0.5)
    # One holder + two queued.
    assert net.channel_load((0, 0), (1, 0)) == 3.0


# ----------------------------------------------------------- statistics
def _run_one(net):
    msg = Message(source=(0, 0), destinations={(2, 0)}, length_flits=100)
    path = Path([(0, 0), (1, 0), (2, 0)])
    proc = PathTransmission(net, msg, path=path).start()
    net.run(until=proc)


def test_channel_utilisation_accumulates():
    net = NetworkSimulator(Mesh((3, 1)), NetworkConfig(startup_latency=0.0))
    _run_one(net)
    assert net.channel((0, 0), (1, 0)).utilisation() > 0.5
    assert net.max_channel_utilisation() >= net.mean_channel_utilisation() > 0


def test_reset_statistics_clears_deliveries():
    net = NetworkSimulator(Mesh((3, 1)))
    _run_one(net)
    assert net.node((2, 0)).deliveries
    net.reset_statistics()
    assert not net.node((2, 0)).deliveries
    assert net.node((0, 0)).sent_count == 0


def test_delivery_hooks_fire_once_per_delivery():
    net = NetworkSimulator(Mesh((3, 1)))
    seen = []
    net.add_delivery_hook(seen.append)
    _run_one(net)
    assert len(seen) == 1
    assert seen[0].node == (2, 0)


def test_node_arrival_bookkeeping():
    net = NetworkSimulator(Mesh((3, 1)))
    node = net.node((2, 0))
    record = DeliveryRecord(message_uid=1234, node=(2, 0), time=5.0)
    node.deliver(record)
    assert node.has_received(1234)
    assert node.arrival_time(1234) == 5.0
    with pytest.raises(KeyError):
        node.arrival_time(999)


def test_node_requires_a_port():
    net = NetworkSimulator(Mesh((2, 1)))
    from repro.network.node import Node

    with pytest.raises(ValueError):
        Node(net.env, (0, 0), ports=0)


def test_seeded_networks_draw_identical_streams():
    a = NetworkSimulator(Mesh((3, 3)), seed=42)
    b = NetworkSimulator(Mesh((3, 3)), seed=42)
    assert a.random["x"].random(5).tolist() == b.random["x"].random(5).tolist()
