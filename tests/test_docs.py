"""Documentation sanity: internal links resolve, docs exist and are
linked from the README (the same check CI's docs job runs)."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docs_links import broken_links, markdown_files  # noqa: E402


def test_docs_exist_and_are_linked():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for doc in ("docs/architecture.md", "docs/campaigns.md"):
        assert (REPO_ROOT / doc).exists(), doc
        assert doc in readme, f"README does not link {doc}"


def test_internal_links_resolve():
    files = markdown_files(REPO_ROOT)
    assert len(files) >= 3  # README + the two docs
    assert broken_links(files) == []


def test_docs_cover_the_campaign_surface():
    campaigns = (REPO_ROOT / "docs" / "campaigns.md").read_text(
        encoding="utf-8"
    )
    for topic in (
        "jsonl",
        "sqlite",
        "shared",
        "try_claim",
        "adaptive",
        "--store-backend",
        "lease",
        "cache",
    ):
        assert topic in campaigns, f"docs/campaigns.md misses {topic!r}"
