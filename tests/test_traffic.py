"""Unit + integration tests for traffic generation (`repro.traffic`)."""

import numpy as np
import pytest

from repro.network import Mesh
from repro.traffic import (
    BitComplementPattern,
    ExponentialArrivals,
    HotspotPattern,
    MixedTrafficConfig,
    MixedTrafficSimulation,
    TransposePattern,
    UniformPattern,
    rate_per_us,
)


# ------------------------------------------------------------ arrivals
def test_rate_conversion():
    assert rate_per_us(1000.0) == pytest.approx(1.0)
    assert rate_per_us(0.05) == pytest.approx(5e-5)
    with pytest.raises(ValueError):
        rate_per_us(-1.0)


def test_exponential_arrivals_mean():
    rng = np.random.default_rng(0)
    arr = ExponentialArrivals(rng, rate=4.0)
    gaps = [arr.next_gap() for _ in range(4000)]
    assert np.mean(gaps) == pytest.approx(0.25, rel=0.1)
    assert all(g >= 0 for g in gaps)


def test_exponential_arrivals_invalid_rate():
    with pytest.raises(ValueError):
        ExponentialArrivals(np.random.default_rng(0), rate=0.0)


def test_arrivals_gap_stream():
    rng = np.random.default_rng(1)
    arr = ExponentialArrivals(rng, rate=1.0)
    stream = arr.gaps()
    assert next(stream) >= 0


# ------------------------------------------------------------ patterns
def test_uniform_pattern_never_self():
    m = Mesh((4, 4))
    pattern = UniformPattern(m)
    rng = np.random.default_rng(0)
    src = (2, 2)
    for _ in range(500):
        assert pattern.pick(src, rng) != src


def test_uniform_pattern_covers_all_destinations():
    m = Mesh((3, 3))
    pattern = UniformPattern(m)
    rng = np.random.default_rng(0)
    seen = {pattern.pick((1, 1), rng) for _ in range(2000)}
    assert len(seen) == 8  # every other node reachable


def test_hotspot_pattern_bias():
    m = Mesh((4, 4))
    pattern = HotspotPattern(m, hotspot=(0, 0), hotspot_fraction=0.5)
    rng = np.random.default_rng(0)
    picks = [pattern.pick((3, 3), rng) for _ in range(2000)]
    frac = sum(1 for p in picks if p == (0, 0)) / len(picks)
    assert frac == pytest.approx(0.5, abs=0.08)


def test_hotspot_validation():
    m = Mesh((4, 4))
    with pytest.raises(ValueError):
        HotspotPattern(m, hotspot=(9, 9))
    with pytest.raises(ValueError):
        HotspotPattern(m, hotspot_fraction=1.5)


def test_hotspot_source_is_hotspot_falls_back():
    m = Mesh((4, 4))
    pattern = HotspotPattern(m, hotspot=(0, 0), hotspot_fraction=1.0)
    rng = np.random.default_rng(0)
    assert pattern.pick((0, 0), rng) != (0, 0)


def test_transpose_pattern():
    m = Mesh((4, 4))
    pattern = TransposePattern(m)
    rng = np.random.default_rng(0)
    assert pattern.pick((1, 3), rng) == (3, 1)
    assert pattern.pick((2, 2), rng) != (2, 2)  # diagonal falls back


def test_transpose_requires_square():
    with pytest.raises(ValueError):
        TransposePattern(Mesh((4, 8)))


def test_bit_complement_pattern():
    m = Mesh((4, 4, 4))
    pattern = BitComplementPattern(m)
    rng = np.random.default_rng(0)
    assert pattern.pick((0, 1, 2), rng) == (3, 2, 1)


# ------------------------------------------------------------ mixed traffic
def test_traffic_config_validation():
    with pytest.raises(ValueError):
        MixedTrafficConfig(load_messages_per_ms=0.0)
    with pytest.raises(ValueError):
        MixedTrafficConfig(load_messages_per_ms=1.0, broadcast_fraction=2.0)
    with pytest.raises(ValueError):
        MixedTrafficConfig(load_messages_per_ms=1.0, message_length_flits=0)


def quick_config(**kw):
    defaults = dict(
        load_messages_per_ms=2.0,
        batch_size=8,
        num_batches=4,
        discard=1,
        seed=3,
        max_sim_time_us=100000,
    )
    defaults.update(kw)
    return MixedTrafficConfig(**defaults)


def test_mixed_traffic_completes_batches():
    sim = MixedTrafficSimulation(Mesh((4, 4, 2)), "DB", quick_config())
    stats = sim.run()
    assert not stats.saturated
    assert stats.batches_completed == 4
    assert stats.operations_completed >= 32
    assert stats.mean_latency_us > 0
    assert stats.throughput_msgs_per_us > 0


def test_mixed_traffic_records_both_kinds():
    sim = MixedTrafficSimulation(
        Mesh((4, 4, 2)), "DB", quick_config(broadcast_fraction=0.3, batch_size=15)
    )
    stats = sim.run()
    assert stats.unicast_mean_latency_us is not None
    assert stats.broadcast_mean_latency_us is not None
    assert stats.broadcast_mean_latency_us > stats.unicast_mean_latency_us


def test_mixed_traffic_pure_unicast():
    sim = MixedTrafficSimulation(
        Mesh((4, 4, 2)), "RD", quick_config(broadcast_fraction=0.0)
    )
    stats = sim.run()
    assert stats.broadcast_mean_latency_us is None
    assert stats.unicast_mean_latency_us == pytest.approx(
        stats.mean_latency_us, rel=0.3
    )


def test_mixed_traffic_reproducible():
    a = MixedTrafficSimulation(Mesh((4, 4, 2)), "AB", quick_config()).run()
    b = MixedTrafficSimulation(Mesh((4, 4, 2)), "AB", quick_config()).run()
    assert a.mean_latency_us == pytest.approx(b.mean_latency_us)
    assert a.operations_completed == b.operations_completed


def test_mixed_traffic_latency_grows_with_load():
    low = MixedTrafficSimulation(
        Mesh((4, 4, 4)), "RD", quick_config(load_messages_per_ms=1.0, batch_size=25)
    ).run()
    high = MixedTrafficSimulation(
        Mesh((4, 4, 4)), "RD", quick_config(load_messages_per_ms=40.0, batch_size=25)
    ).run()
    assert high.mean_latency_us > low.mean_latency_us


def test_mixed_traffic_time_cap_reports_saturation():
    sim = MixedTrafficSimulation(
        Mesh((4, 4, 2)),
        "DB",
        quick_config(load_messages_per_ms=0.001, max_sim_time_us=500.0),
    )
    stats = sim.run()
    assert stats.saturated  # nowhere near enough arrivals in 500 us
    assert stats.batches_completed < 4
