"""Tests for the closed-form analysis (`repro.analysis`).

The step-count functions are independent re-derivations of what the
schedule builders construct; these tests pin them to each other and to
the paper's quoted formulas.
"""

import pytest

from repro.analysis import (
    LatencyModel,
    ab_steps,
    broadcast_latency_lower_bound,
    compare_algorithms,
    db_steps,
    edn_steps,
    message_latency,
    rd_steps,
    step_count,
)
from repro.core import get_algorithm
from repro.network import Mesh, NetworkConfig


# ------------------------------------------------------------- step counts
def test_rd_steps_formula():
    assert rd_steps((8, 8, 8)) == 9
    assert rd_steps((16, 16, 16)) == 12
    assert rd_steps((10, 10, 10)) == 12
    assert rd_steps((1, 1, 8)) == 3


def test_edn_steps_paper_formula():
    for k, m in [(0, 0), (1, 1), (2, 1), (1, 2)]:
        dims = (4 * 2**k, 4 * 2**k, 4 * 2**m)
        assert edn_steps(dims) == k + m + 4


def test_db_ab_steps():
    assert db_steps((8, 8, 8)) == 4
    assert ab_steps((8, 8, 8)) == 3
    assert db_steps((8, 8)) == 3
    assert ab_steps((8, 8)) == 2


def test_step_models_require_2d_or_3d():
    with pytest.raises(ValueError):
        edn_steps((4, 4, 4, 4))
    with pytest.raises(ValueError):
        db_steps((4,))
    with pytest.raises(ValueError):
        ab_steps((4, 4, 4, 4))


def test_step_count_dispatch():
    assert step_count("rd", (8, 8, 8)) == 9
    assert step_count("AB", (8, 8, 8)) == 3
    with pytest.raises(KeyError):
        step_count("nope", (8, 8, 8))


@pytest.mark.parametrize("name", ["RD", "EDN", "DB", "AB"])
@pytest.mark.parametrize("dims", [(4, 4, 4), (8, 8, 8), (10, 10, 10), (6, 6, 3)])
def test_analysis_matches_builders(name, dims):
    """The independent formulas agree with the schedule constructors."""
    algo = get_algorithm(name)(Mesh(dims))
    assert step_count(name, dims) == algo.step_count()


# ------------------------------------------------------------ latency model
def test_message_latency_formula():
    config = NetworkConfig(startup_latency=1.5, flit_time=0.003)
    assert message_latency(config, hops=9, length_flits=100) == pytest.approx(
        1.5 + 9 * 0.003 + 99 * 0.003
    )


def test_message_latency_validation():
    config = NetworkConfig()
    with pytest.raises(ValueError):
        message_latency(config, hops=0, length_flits=10)
    with pytest.raises(ValueError):
        message_latency(config, hops=1, length_flits=0)


def test_distance_bound_never_beaten_by_simulation():
    from repro import broadcast
    from repro.analysis import distance_lower_bound

    mesh = Mesh((4, 4, 4))
    for name in ("RD", "EDN", "DB", "AB"):
        algo = get_algorithm(name)(mesh)
        config = NetworkConfig(ports_per_node=algo.ports_required)
        floor = distance_lower_bound(mesh, (1, 2, 3), config, 64)
        outcome = broadcast(name, mesh, (1, 2, 3), 64)
        assert outcome.network_latency >= floor - 1e-9, name


def test_steps_floor_bounds_barrier_execution():
    from repro.core import BarrierStepExecutor

    mesh = Mesh((4, 4, 4))
    for name in ("RD", "EDN", "DB", "AB"):
        algo = get_algorithm(name)(mesh)
        config = NetworkConfig(ports_per_node=algo.ports_required)
        floor = broadcast_latency_lower_bound(name, (4, 4, 4), config, 64)
        outcome = BarrierStepExecutor(mesh, config).execute(
            algo.schedule((1, 2, 3)), 64
        )
        assert outcome.network_latency >= floor - 1e-9, name


def test_startup_share_dominates_at_paper_constants():
    """The paper's premise: Ts dwarfs the transmission terms."""
    model = LatencyModel(NetworkConfig(startup_latency=1.5), length_flits=100)
    assert model.startup_share(hops=9) > 0.8
    cheap = LatencyModel(NetworkConfig(startup_latency=0.15), length_flits=100)
    assert cheap.startup_share(hops=9) < 0.4


def test_latency_model_wrapper():
    model = LatencyModel(NetworkConfig(), length_flits=32)
    assert model.message(5) > 0
    assert model.broadcast_floor("AB", (8, 8, 8)) == pytest.approx(
        3 * model.message(1)
    )


def test_distance_lower_bound_is_farthest_node_latency():
    from repro.analysis import distance_lower_bound

    mesh = Mesh((4, 4))
    config = NetworkConfig()
    floor = distance_lower_bound(mesh, (0, 0), config, 10)
    assert floor == pytest.approx(message_latency(config, hops=6, length_flits=10))
    centre = distance_lower_bound(mesh, (2, 2), config, 10)
    assert centre < floor  # centre sources are closer to everything


# ------------------------------------------------------------- comparison
def test_compare_algorithms_profile():
    rows = compare_algorithms((4, 4, 4), length_flits=64)
    by_name = {r.algorithm: r for r in rows}
    assert set(by_name) == {"RD", "EDN", "DB", "AB"}
    assert by_name["RD"].steps == 6
    assert by_name["AB"].steps == 3
    assert by_name["AB"].analytic_latency < by_name["RD"].analytic_latency
    for row in rows:
        assert row.analytic_latency >= row.latency_floor - 1e-9
        assert row.total_sends > 0
        d = row.as_dict()
        assert d["algorithm"] == row.algorithm


def test_compare_algorithms_custom_source():
    rows = compare_algorithms((4, 4, 4), source=(0, 0, 0))
    assert all(r.steps > 0 for r in rows)
