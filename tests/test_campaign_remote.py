"""Tests for the distributed campaign fabric: coordinator + HttpStore.

Covers the headline distributed guarantee (two client pools draining
one coordinator produce records and aggregates byte-identical to a
serial run, each unit executed exactly once), the CLI surface
(``campaign run/status --store http://...``, ``status --json``, the
friendly unreachable-coordinator error), lease heartbeats carried
over HTTP, coordinator restart mid-campaign resuming from the backing
store, and rpc.* trace events from both sides of the wire.

Chaos-level fault injection (dropped/duplicated/delayed calls, killed
workers) lives in ``test_campaign_chaos.py``; the per-backend store
contract — which the http backend also passes — in
``test_store_conformance.py``.
"""

import json
import threading
import time

import pytest

from repro.campaigns import (
    CampaignSpec,
    HttpStore,
    UnitSpec,
    aggregate,
    freeze_params,
    open_store,
    run_campaign,
)
from repro.campaigns.pool import lease_heartbeat, register_unit_runner
from repro.campaigns.remote import (
    CampaignCoordinator,
    StoreUnreachableError,
    record_content_hash,
)
from repro.cli import main
from repro.experiments.common import broadcast_units
from repro.obs.trace import ListSink, Tracer, read_trace_dir, summarize_trace

# A port from the discard range: nothing listens there, connections
# fail fast, so the retry loop exercises its full backoff quickly.
DEAD_URL = "http://127.0.0.1:9"


def small_campaign(seed=0):
    units = broadcast_units(
        "fig1", [(4, 4, 4)], ["RD", "DB"], 64, "smoke", seed=seed
    )
    return CampaignSpec(name=f"small-s{seed}", seed=seed, units=tuple(units))


@register_unit_runner("counted-remote")
def _run_counted_remote(spec):
    with open(spec.param("log"), "a", encoding="utf-8") as handle:
        handle.write(spec.unit_hash + "\n")
    time.sleep(0.005)  # widen the contention window
    return {"replication": spec.replication}


def counting_campaign(log_path, n_units=12):
    units = tuple(
        UnitSpec(
            experiment="contention",
            kind="counted-remote",
            algorithm="DB",
            dims=(4, 4, 4),
            length_flits=8,
            seed=0,
            replication=replication,
            params=freeze_params(log=str(log_path)),
        )
        for replication in range(n_units)
    )
    return CampaignSpec(name="contention-http", seed=0, units=units)


@pytest.fixture
def coordinator(tmp_path):
    backing = open_store(tmp_path / "backing.sqlite", "sqlite")
    with CampaignCoordinator(backing, port=0) as coord:
        yield coord


def fast_store(url):
    return HttpStore(url, retries=2, backoff_s=0.01)


# ---------------------------------------------------- distributed runs
def test_two_client_pools_byte_identical_to_serial(coordinator, tmp_path):
    log = tmp_path / "executions.log"
    spec = counting_campaign(log)
    results = {}

    def pool(name):
        results[name] = run_campaign(
            spec,
            store=fast_store(coordinator.url),
            poll_interval_s=0.01,
            lease_ttl_s=60.0,
        )

    threads = [
        threading.Thread(target=pool, args=(name,)) for name in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive()

    # Every unit executed exactly once, by whichever pool won its lease.
    executed = log.read_text().split()
    assert sorted(executed) == sorted(spec.unit_hashes())
    # ... and byte-identical to a serial, storeless run (executed
    # after the once-each assertion — it also writes to the log).
    assert results["a"] == results["b"] == run_campaign(spec)


def test_distributed_aggregates_match_serial(coordinator):
    spec = small_campaign()
    serial = run_campaign(spec)
    remote = run_campaign(spec, store=fast_store(coordinator.url))
    assert remote == serial
    assert aggregate("fig1", remote) == aggregate("fig1", serial)
    # the records persisted through the coordinator's backing store
    assert coordinator.store.completed_hashes() == set(spec.unit_hashes())


def test_resume_over_http_recomputes_nothing(coordinator):
    spec = small_campaign()
    first = run_campaign(spec, store=fast_store(coordinator.url))
    lines = []
    second = run_campaign(
        spec, store=fast_store(coordinator.url), progress=lines.append
    )
    assert second == first
    assert f"({len(spec)} cached, 0 to run" in lines[0]


def test_coordinator_restart_resumes_from_backing_store(tmp_path):
    log = tmp_path / "executions.log"
    spec = counting_campaign(log, n_units=6)
    backing_path = tmp_path / "backing.sqlite"

    # First coordinator: land half the campaign, then go down.
    half = CampaignSpec(name=spec.name, seed=spec.seed, units=spec.units[:3])
    with CampaignCoordinator(
        open_store(backing_path, "sqlite"), port=0
    ) as coord:
        run_campaign(half, store=fast_store(coord.url))

    # Second coordinator on the same backing store: the campaign
    # resumes where it stopped (the dedup set is gone — that is safe,
    # backends key by unit hash).
    with CampaignCoordinator(
        open_store(backing_path, "sqlite"), port=0
    ) as coord:
        lines = []
        records = run_campaign(
            spec, store=fast_store(coord.url), progress=lines.append
        )
    assert "(3 cached, 3 to run" in lines[0]
    executed = log.read_text().split()
    assert sorted(executed) == sorted(spec.unit_hashes())  # once each
    assert records == run_campaign(spec)  # (re-logs; checked above)


# -------------------------------------------------------------- leases
def test_heartbeat_over_http_keeps_lease_alive(coordinator):
    store = fast_store(coordinator.url)
    assert store.try_claim("h1", "alice", ttl_s=0.3)
    with lease_heartbeat(store, "h1", "alice", ttl_s=0.3):
        time.sleep(0.8)  # several TTLs: only the heartbeat keeps it
        assert not fast_store(coordinator.url).try_claim(
            "h1", "bob", ttl_s=30
        )
    store.release("h1", "alice")
    assert fast_store(coordinator.url).try_claim("h1", "bob", ttl_s=30)


def test_heartbeat_failure_when_coordinator_down_warns_and_traces():
    sink = ListSink()
    tracer = Tracer(sink, pid=1, role="worker")
    store = fast_store(DEAD_URL)
    with pytest.warns(RuntimeWarning, match="lease heartbeat .* failed"):
        with lease_heartbeat(store, "a" * 40, "owner", ttl_s=0.1,
                             tracer=tracer):
            time.sleep(0.4)  # several beat attempts at ttl/3 cadence
    errors = [
        r for r in sink.records
        if r.get("type") == "event" and r.get("name") == "heartbeat.error"
    ]
    assert errors
    assert "unreachable" in errors[0]["args"]["error"]


# ------------------------------------------------------------- tracing
def test_rpc_events_spool_from_both_sides(coordinator, tmp_path):
    spec = small_campaign()
    trace_dir = tmp_path / "spool"
    run_campaign(
        spec, store=fast_store(coordinator.url), trace_dir=trace_dir
    )
    records = read_trace_dir(trace_dir)
    names = {r["name"] for r in records if r.get("type") == "event"}
    assert {"rpc.claim", "rpc.append", "rpc.release"} <= names
    rpc = summarize_trace(records)["rpc"]
    assert rpc["rpc.append"] == len(spec)
    assert rpc["rpc.claim"] >= len(spec)


def test_retry_emits_rpc_retry_then_gives_up():
    sink = ListSink()
    store = HttpStore(DEAD_URL, retries=3, backoff_s=0.001)
    store.set_tracer(Tracer(sink, pid=1, role="pool"))
    with pytest.raises(StoreUnreachableError) as err:
        store.records()
    assert "3 attempt(s)" in str(err.value)
    assert "repro campaign serve" in str(err.value)
    retries = [
        r for r in sink.records
        if r.get("type") == "event" and r.get("name") == "rpc.retry"
    ]
    assert [r["args"]["attempt"] for r in retries] == [1, 2, 3]


def test_idempotency_key_is_stable_content_hash():
    from repro.campaigns.store import UnitRecord

    rec = UnitRecord(
        unit_hash="a" * 16, experiment="x", spec={}, result={"v": 1}
    )
    same = UnitRecord(
        unit_hash="a" * 16, experiment="x", spec={}, result={"v": 1}
    )
    other = UnitRecord(
        unit_hash="a" * 16, experiment="x", spec={}, result={"v": 2}
    )
    assert record_content_hash(rec.to_dict()) == record_content_hash(
        same.to_dict()
    )
    assert record_content_hash(rec.to_dict()) != record_content_hash(
        other.to_dict()
    )


def test_coordinator_dedups_retried_append(coordinator):
    from repro.campaigns.store import UnitRecord

    store = fast_store(coordinator.url)
    rec = UnitRecord(
        unit_hash="f" * 16, experiment="x", spec={}, result={"v": 1}
    )
    store.append(rec)
    store.append(rec)  # the retried duplicate
    assert store.status()["appends_deduped"] == 1
    assert len(store.records()) == 1


def test_dedup_window_stays_bounded_under_long_append_stream(tmp_path):
    from repro.campaigns.store import UnitRecord

    def record(i, v=1):
        return UnitRecord(
            unit_hash=f"u{i:06d}", experiment="x", spec={}, result={"v": v}
        )

    backing = open_store(tmp_path / "backing.sqlite", "sqlite")
    with CampaignCoordinator(backing, port=0, dedup_cap=64) as coord:
        store = fast_store(coord.url)
        # A long-uptime append stream: 10x the cap in distinct records.
        for i in range(640):
            store.append(record(i))
            assert len(coord._applied_appends) <= 64
        status = store.status()
        assert status["appends_dedup_cap"] == 64
        assert status["appends_dedup_size"] == 64
        assert status["appends_dedup_evicted"] == 640 - 64
        # Recent duplicates (inside the window) still suppress...
        before = len(backing.records())
        store.append(record(639))
        assert store.status()["appends_deduped"] == 1
        assert len(backing.records()) == before
        # ...while a duplicate of an *evicted* key merely re-appends,
        # which the backend absorbs via last-record-wins (never corrupts).
        store.append(record(0))
        assert store.status()["appends_deduped"] == 1  # not suppressed
        assert len(backing.records()) == before
        assert backing.get("u000000").result == {"v": 1}


def test_coordinator_rejects_nonpositive_dedup_cap(tmp_path):
    backing = open_store(tmp_path / "backing.sqlite", "sqlite")
    with pytest.raises(ValueError, match="dedup_cap"):
        CampaignCoordinator(backing, port=0, dedup_cap=0)


# ----------------------------------------------------------------- CLI
def test_cli_run_and_status_against_coordinator(coordinator, capsys):
    url = coordinator.url
    assert main(
        [
            "campaign", "run", "fig1", "--scale", "smoke",
            "--workers", "2", "--store", url,
        ]
    ) == 0
    capsys.readouterr()
    assert main(
        ["campaign", "status", "fig1", "--scale", "smoke", "--store", url]
    ) == 0
    out = capsys.readouterr().out
    assert "[http]" in out
    assert "32/32 units complete" in out
    assert url in out


def test_cli_status_json_against_coordinator(coordinator, capsys):
    from repro.experiments import campaign_for

    # Land exactly one smoke-grid unit and claim another, so the JSON
    # report has every state represented.
    spec = campaign_for("fig1", "smoke", 0)
    store = fast_store(coordinator.url)
    run_campaign(
        CampaignSpec(name="one", seed=0, units=spec.units[:1]), store=store
    )
    assert store.try_claim(spec.unit_hashes()[1], "worker-elsewhere",
                           ttl_s=60)
    assert main(
        [
            "campaign", "status", "fig1", "--scale", "smoke",
            "--json", "--store", coordinator.url,
        ]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["backend"] == "http"
    assert payload[0]["store"] == coordinator.url
    assert payload[0]["total"] == len(spec)
    assert payload[0]["completed"] == 1
    assert payload[0]["leased"] == 1
    assert payload[0]["pending"] == len(spec) - 2


def test_cli_unreachable_coordinator_is_a_clean_error(capsys):
    code = main(
        [
            "campaign", "status", "fig1", "--scale", "smoke",
            "--store", DEAD_URL,
        ]
    )
    assert code == 1
    err = capsys.readouterr().err
    assert "repro:" in err
    assert "unreachable" in err
    assert "repro campaign serve" in err
    assert "Traceback" not in err


def test_cli_http_backend_requires_url(capsys):
    with pytest.raises(SystemExit) as exc:
        main(
            [
                "campaign", "run", "fig1", "--scale", "smoke",
                "--store-backend", "http",
            ]
        )
    assert "--store http://host:port" in str(exc.value)


def test_cli_serve_rejects_url_backing_store(tmp_path):
    # A coordinator must own a *local* store — chaining coordinators
    # would hide the durability story.
    with pytest.raises(ValueError, match="local"):
        CampaignCoordinator(fast_store(DEAD_URL))


def test_open_store_url_inference(tmp_path):
    store = open_store("http://127.0.0.1:9")
    assert isinstance(store, HttpStore)
    with pytest.raises(ValueError, match="http"):
        open_store(tmp_path / "x.jsonl", "http")
    with pytest.raises(ValueError, match="store-backend http"):
        open_store("http://127.0.0.1:9", "sqlite")
