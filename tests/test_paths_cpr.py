"""Unit tests for path objects and CPR path builders."""

import pytest

from repro.network import ControlField, Mesh
from repro.routing import (
    Path,
    column_path,
    row_path,
    snake_path,
    split_deliveries,
    straight_line_path,
)


# ---------------------------------------------------------------- Path
def test_path_defaults_unicast_delivery():
    p = Path([(0, 0), (1, 0), (2, 0)])
    assert p.deliveries == frozenset({(2, 0)})
    assert p.hop_count == 2
    assert p.source == (0, 0)
    assert p.terminus == (2, 0)


def test_path_explicit_deliveries():
    p = Path([(0, 0), (1, 0), (2, 0)], deliveries=[(1, 0), (2, 0)])
    assert p.deliveries == frozenset({(1, 0), (2, 0)})


def test_path_rejects_off_path_delivery():
    with pytest.raises(ValueError):
        Path([(0, 0), (1, 0)], deliveries=[(5, 5)])


def test_path_rejects_source_delivery():
    with pytest.raises(ValueError):
        Path([(0, 0), (1, 0)], deliveries=[(0, 0)])


def test_path_rejects_empty():
    with pytest.raises(ValueError):
        Path([])


def test_path_channels():
    p = Path([(0, 0), (1, 0), (1, 1)])
    assert list(p.channels()) == [((0, 0), (1, 0)), ((1, 0), (1, 1))]


def test_path_validate_against_topology():
    m = Mesh((4, 4))
    Path([(0, 0), (1, 0), (1, 1)]).validate(m)  # ok
    with pytest.raises(ValueError):
        Path([(0, 0), (2, 0)]).validate(m)  # not adjacent
    with pytest.raises(ValueError):
        Path([(0, 0), (0, 4)]).validate(m)  # outside


def test_path_rejects_channel_reuse():
    m = Mesh((4, 4))
    p = Path([(0, 0), (1, 0), (0, 0), (1, 0)])
    with pytest.raises(ValueError, match="reuses"):
        p.validate(m)


def test_path_is_minimal():
    m = Mesh((4, 4))
    assert Path([(0, 0), (1, 0), (2, 0)]).is_minimal(m)
    assert not Path([(0, 0), (0, 1), (1, 1), (1, 0), (2, 0)]).is_minimal(m)


# ----------------------------------------------------------- straight lines
def test_straight_line_forward_and_backward():
    p = straight_line_path((0, 2), axis=1, end_value=0)
    assert p.nodes == ((0, 2), (0, 1), (0, 0))
    assert p.deliveries == frozenset({(0, 1), (0, 0)})


def test_straight_line_zero_span_rejected():
    with pytest.raises(ValueError):
        straight_line_path((0, 2), axis=1, end_value=2)


def test_straight_line_bad_axis():
    with pytest.raises(ValueError):
        straight_line_path((0, 2), axis=5, end_value=0)


def test_row_and_column_paths():
    assert row_path((0, 3), 2).nodes == ((0, 3), (1, 3), (2, 3))
    assert column_path((3, 0), 2).nodes == ((3, 0), (3, 1), (3, 2))


# ---------------------------------------------------------------- snakes
def test_snake_covers_rectangle_once():
    p = snake_path((0, 0), xs=[0, 1, 2], ys=[0, 1, 2, 3])
    m = Mesh((4, 4))
    p.validate(m)
    assert len(p.nodes) == 12
    assert len(set(p.nodes)) == 12
    assert p.deliveries == frozenset(p.nodes[1:])


def test_snake_alternates_direction():
    p = snake_path((0, 0), xs=[0, 1], ys=[0, 1])
    assert p.nodes == ((0, 0), (0, 1), (1, 1), (1, 0))


def test_snake_start_must_match():
    with pytest.raises(ValueError):
        snake_path((5, 5), xs=[0, 1], ys=[0, 1])


def test_snake_rejects_non_adjacent_steps():
    with pytest.raises(ValueError):
        snake_path((0, 0), xs=[0, 2], ys=[0, 1])


def test_snake_3d_keeps_tail_coordinates():
    p = snake_path((0, 0, 5), xs=[0, 1], ys=[0, 1])
    assert all(n[2] == 5 for n in p.nodes)


# ---------------------------------------------------------- split_deliveries
def test_split_deliveries_noop_when_small():
    p = straight_line_path((0, 0), axis=0, end_value=3)
    assert split_deliveries(p, 10) == [p]


def test_split_deliveries_partitions_targets():
    p = straight_line_path((0, 0), axis=0, end_value=7)  # 7 deliveries
    pieces = split_deliveries(p, 3)
    assert len(pieces) == 3
    got = set()
    for piece in pieces:
        assert piece.source == (0, 0)
        assert len(piece.deliveries) <= 3
        assert not (piece.deliveries & got)
        got |= piece.deliveries
    assert got == p.deliveries


def test_split_deliveries_pieces_are_prefixes():
    p = straight_line_path((0, 0), axis=0, end_value=7)
    pieces = split_deliveries(p, 3)
    for piece in pieces:
        assert piece.nodes == p.nodes[: len(piece.nodes)]


def test_split_deliveries_invalid_bound():
    p = straight_line_path((0, 0), axis=0, end_value=3)
    with pytest.raises(ValueError):
        split_deliveries(p, 0)


# ---------------------------------------------------------- control fields
def test_control_field_semantics():
    assert not ControlField.PASS.delivers
    assert ControlField.PASS.forwards
    assert ControlField.RECEIVE.delivers
    assert not ControlField.RECEIVE.forwards
    assert ControlField.PASS_AND_RECEIVE.delivers
    assert ControlField.PASS_AND_RECEIVE.forwards
    assert ControlField.RECEIVE_AND_REPLICATE.delivers
    assert ControlField.RECEIVE_AND_REPLICATE.forwards


def test_control_field_is_two_bits():
    assert {f.value for f in ControlField} == {0b00, 0b01, 0b10, 0b11}
