"""Unit + property tests for `repro.network.coordinates`."""

import pytest
from hypothesis import given, strategies as st

from repro.network.coordinates import (
    add,
    chebyshev_distance,
    coordinate_iter,
    from_index,
    manhattan_distance,
    to_index,
    validate_coordinate,
    validate_dims,
)

dims_strategy = st.lists(st.integers(1, 6), min_size=1, max_size=4).map(tuple)


def coords_for(dims):
    return st.tuples(*[st.integers(0, d - 1) for d in dims])


# ----------------------------------------------------------------- validation
def test_validate_dims_rejects_empty():
    with pytest.raises(ValueError):
        validate_dims(())


def test_validate_dims_rejects_nonpositive():
    with pytest.raises(ValueError):
        validate_dims((4, 0))


def test_validate_coordinate_wrong_arity():
    with pytest.raises(ValueError):
        validate_coordinate((1, 2), (4, 4, 4))


def test_validate_coordinate_out_of_range():
    with pytest.raises(ValueError):
        validate_coordinate((4, 0), (4, 4))


# ----------------------------------------------------------------- indexing
def test_to_index_row_major():
    # Last dimension varies fastest.
    assert to_index((0, 0, 0), (2, 3, 4)) == 0
    assert to_index((0, 0, 1), (2, 3, 4)) == 1
    assert to_index((0, 1, 0), (2, 3, 4)) == 4
    assert to_index((1, 0, 0), (2, 3, 4)) == 12


def test_from_index_bounds():
    with pytest.raises(ValueError):
        from_index(24, (2, 3, 4))
    with pytest.raises(ValueError):
        from_index(-1, (2, 3, 4))


@given(dims_strategy.flatmap(lambda d: st.tuples(st.just(d), coords_for(d))))
def test_index_roundtrip(dims_coord):
    dims, coord = dims_coord
    assert from_index(to_index(coord, dims), dims) == coord


def test_coordinate_iter_matches_linear_order():
    dims = (2, 3)
    coords = list(coordinate_iter(dims))
    assert coords == [from_index(i, dims) for i in range(6)]
    assert len(set(coords)) == 6


# ----------------------------------------------------------------- distances
def test_manhattan_distance_basic():
    assert manhattan_distance((0, 0, 0), (3, 2, 1)) == 6


def test_chebyshev_distance_basic():
    assert chebyshev_distance((0, 0, 0), (3, 2, 1)) == 3


def test_distance_arity_mismatch():
    with pytest.raises(ValueError):
        manhattan_distance((0, 0), (1, 1, 1))
    with pytest.raises(ValueError):
        chebyshev_distance((0, 0), (1, 1, 1))


@given(
    dims_strategy.flatmap(
        lambda d: st.tuples(st.just(d), coords_for(d), coords_for(d), coords_for(d))
    )
)
def test_manhattan_is_a_metric(args):
    _, a, b, c = args
    assert manhattan_distance(a, b) == manhattan_distance(b, a)
    assert manhattan_distance(a, a) == 0
    assert manhattan_distance(a, c) <= manhattan_distance(a, b) + manhattan_distance(
        b, c
    )


def test_add():
    assert add((1, 2), (0, -1)) == (1, 1)
    with pytest.raises(ValueError):
        add((1,), (1, 2))
