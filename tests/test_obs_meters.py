"""Exactness of the mergeable run meters (`repro.obs.meters`).

The meters promise campaign metrics the same guarantee unit results
get from `repro.metrics.partial`: however an observation/update stream
is cut across workers and shards, merging the pieces reproduces the
serial meter — bit for bit on the batching fields and bucket counts.
Hypothesis drives the splits, exactly like ``tests/test_partial_stats``
does for the underlying algebra.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.meters import (
    Counter,
    Gauge,
    Histogram,
    MeterRegistry,
    coalesce_partials,
    merge_counters,
    merge_gauges,
    merge_histograms,
    merge_registries,
)

BOUNDS = (0.5, 2.0, 8.0, 32.0)


# ------------------------------------------------------------ strategies
def observations(min_size=0, max_size=160):
    return st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        min_size=min_size,
        max_size=max_size,
    )


@st.composite
def stream_and_cuts(draw):
    xs = draw(observations())
    batch_size = draw(st.integers(min_value=1, max_value=9))
    n_cuts = draw(st.integers(min_value=0, max_value=6))
    cuts = sorted(
        draw(st.integers(min_value=0, max_value=len(xs)))
        for _ in range(n_cuts)
    )
    return xs, batch_size, cuts


def segments(xs, cuts):
    """Cut ``xs`` at ``cuts`` → (offset, values) slices tiling the stream."""
    edges = [0] + list(cuts) + [len(xs)]
    return [
        (start, xs[start:end])
        for start, end in zip(edges, edges[1:])
    ]


def fill_histogram(hist, values):
    for value in values:
        hist.observe(value)
    return hist


# ------------------------------------------------------ histogram merging
@settings(max_examples=200, deadline=None)
@given(stream_and_cuts())
def test_histogram_merge_of_any_split_is_exact(case):
    xs, batch_size, cuts = case
    serial = fill_histogram(Histogram("lat", BOUNDS, batch_size), xs)
    shards = [
        fill_histogram(
            Histogram("lat", BOUNDS, batch_size, offset=start), values
        )
        for start, values in segments(xs, cuts)
    ]
    merged = merge_histograms(reversed(shards))  # order must not matter

    assert merged.bucket_counts == serial.bucket_counts
    assert merged.count == serial.count
    assert merged.total == pytest.approx(serial.total)

    serial_parts = serial.partials()
    merged_parts = merged.partials()
    assert len(merged_parts) == len(serial_parts)  # 0 or 1: stream tiles
    for got, want in zip(merged_parts, serial_parts):
        # The batching fields are the bit-exact contract: identical
        # floats in identical order to the unsplit stream.
        assert got.offset == want.offset
        assert got.count == want.count
        assert got.head == want.head
        assert got.batch_means == want.batch_means
        assert got.tail == want.tail


@settings(max_examples=200, deadline=None)
@given(stream_and_cuts())
def test_histogram_dict_round_trip(case):
    xs, batch_size, cuts = case
    shards = [
        fill_histogram(
            Histogram("lat", BOUNDS, batch_size, offset=start), values
        )
        for start, values in segments(xs, cuts)
    ]
    merged = merge_histograms(shards)
    # Through JSON — the shape that travels in unit records.
    revived = Histogram.from_dict(json.loads(json.dumps(merged.to_dict())))
    assert revived.bucket_counts == merged.bucket_counts
    assert revived.count == merged.count
    assert revived.partials() == merged.partials()


def test_histogram_buckets_and_quantiles():
    hist = fill_histogram(
        Histogram("lat", BOUNDS, batch_size=4), [0.1, 0.5, 1.0, 4.0, 100.0]
    )
    # v lands in the first bucket with v <= bound; above the last bound
    # is the overflow bucket.
    assert hist.bucket_counts == [2, 1, 1, 0, 1]
    assert hist.quantile(0.0) == 0.5
    assert hist.quantile(0.4) == 0.5
    assert hist.quantile(0.5) == 2.0
    assert hist.quantile(0.8) == 8.0
    assert hist.quantile(1.0) == float("inf")
    assert hist.mean == pytest.approx(105.6 / 5)
    with pytest.raises(ValueError):
        hist.quantile(1.5)
    with pytest.raises(ValueError):
        Histogram("e", BOUNDS).quantile(0.5)


def test_histogram_merge_rejects_mismatches():
    base = Histogram("lat", BOUNDS)
    with pytest.raises(ValueError):
        merge_histograms([base, Histogram("other", BOUNDS)])
    with pytest.raises(ValueError):
        merge_histograms([base, Histogram("lat", (1.0, 2.0))])
    with pytest.raises(ValueError):
        merge_histograms([base, Histogram("lat", BOUNDS, batch_size=5)])
    with pytest.raises(ValueError):
        merge_histograms([])
    with pytest.raises(ValueError):
        Histogram("bad", (2.0, 1.0))


def test_coalesce_keeps_gaps_as_separate_chunks():
    left = fill_histogram(
        Histogram("lat", BOUNDS, batch_size=2, offset=0), [1.0, 2.0]
    )
    # Offset 6: the worker covering [2, 6) crashed and lost its slice.
    right = fill_histogram(
        Histogram("lat", BOUNDS, batch_size=2, offset=6), [3.0, 4.0]
    )
    merged = merge_histograms([left, right])
    parts = merged.partials()
    assert [p.offset for p in parts] == [0, 6]
    assert merged.count == 4
    assert coalesce_partials([]) == ()


# ------------------------------------------------------------- gauges
@settings(max_examples=200, deadline=None)
@given(stream_and_cuts())
def test_gauge_merge_of_any_split_is_exact(case):
    xs, _batch_size, cuts = case
    serial = Gauge("depth")
    for value in xs:
        serial.set(value)
    shards = []
    for start, values in segments(xs, cuts):
        gauge = Gauge("depth", offset=start)
        for value in values:
            gauge.set(value)
        shards.append(gauge)
    merged = merge_gauges(reversed(shards))
    assert merged.updates == serial.updates
    assert merged.last == serial.last
    assert merged.low == serial.low
    assert merged.high == serial.high


def test_gauge_merge_rejects_gaps_and_overlaps():
    a = Gauge("depth", offset=0)
    a.set(1.0)
    gapped = Gauge("depth", offset=5)
    gapped.set(2.0)
    with pytest.raises(ValueError, match="gapped"):
        merge_gauges([a, gapped])
    overlapping = Gauge("depth", offset=0)
    overlapping.set(3.0)
    with pytest.raises(ValueError, match="overlapping"):
        merge_gauges([a, overlapping])
    with pytest.raises(ValueError):
        merge_gauges([a, Gauge("other", offset=1)])
    with pytest.raises(ValueError):
        merge_gauges([])


def test_gauge_dict_round_trip_and_validation():
    gauge = Gauge("depth", offset=3)
    gauge.set(2.0)
    gauge.set(-1.0)
    revived = Gauge.from_dict(json.loads(json.dumps(gauge.to_dict())))
    assert (revived.offset, revived.updates) == (3, 2)
    assert (revived.last, revived.low, revived.high) == (-1.0, -1.0, 2.0)
    with pytest.raises(ValueError):
        Gauge("bad", offset=-1)
    with pytest.raises(ValueError):
        Gauge("bad", updates=1)  # non-empty but no last value


# ------------------------------------------------------------ counters
def test_counter_merge_and_round_trip():
    a = Counter("events")
    a.inc()
    a.inc(41)
    b = Counter.from_dict(json.loads(json.dumps(a.to_dict())))
    assert b.value == 42
    assert merge_counters([a, b]).value == 84
    with pytest.raises(ValueError):
        merge_counters([a, Counter("other")])
    with pytest.raises(ValueError):
        merge_counters([])


# ------------------------------------------------------------ registry
def test_registry_round_trip_and_merge():
    def worker(offset, values):
        registry = MeterRegistry()
        registry.counter("units").inc(len(values))
        gauge = registry.gauge("depth", offset=offset)
        hist = registry.histogram("lat", BOUNDS, batch_size=2, offset=offset)
        for value in values:
            gauge.set(value)
            hist.observe(value)
        return registry

    xs = [0.25, 1.5, 4.0, 9.0, 50.0]
    shards = [worker(0, xs[:2]), worker(2, xs[2:])]
    # Through JSON, like registries riding along in unit records.
    revived = [
        MeterRegistry.from_dict(json.loads(json.dumps(r.to_dict())))
        for r in shards
    ]
    merged = merge_registries(revived)

    serial = worker(0, xs)
    assert merged.counter("units").value == 5
    assert merged.gauge("depth").last == serial.gauge("depth").last
    assert (
        merged.meters["lat"].bucket_counts
        == serial.meters["lat"].bucket_counts
    )
    assert merged.meters["lat"].partials() == serial.meters["lat"].partials()


def test_registry_kind_checks():
    registry = MeterRegistry()
    registry.counter("n")
    with pytest.raises(TypeError):
        registry.gauge("n")
    with pytest.raises(TypeError):
        registry.histogram("n", BOUNDS)
    with pytest.raises(ValueError):
        MeterRegistry.from_dict({"x": {"kind": "nope"}})

    other = MeterRegistry()
    other.gauge("n").set(1.0)
    with pytest.raises(ValueError, match="conflicting kinds"):
        merge_registries([registry, other])


# --------------------------------------------------- exact percentiles
def nearest_rank(values, q):
    """The textbook nearest-rank percentile — the oracle percentile()
    must match when batch_size=1 preserves every raw observation."""
    import math

    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def test_percentile_exact_nearest_rank_examples():
    hist = fill_histogram(
        Histogram("lat", BOUNDS, batch_size=1), [5.0, 1.0, 3.0, 2.0, 4.0]
    )
    assert hist.percentile(0.0) == 1.0
    assert hist.percentile(0.5) == 3.0
    assert hist.percentile(0.95) == 5.0
    assert hist.percentile(1.0) == 5.0
    with pytest.raises(ValueError):
        hist.percentile(1.5)
    with pytest.raises(ValueError):
        Histogram("empty", BOUNDS).percentile(0.5)


@settings(max_examples=200, deadline=None)
@given(stream_and_cuts(), st.floats(min_value=0.0, max_value=1.0))
def test_percentiles_survive_any_split(case, q):
    # merge(split(stream)).percentile(q) == unsplit.percentile(q),
    # whatever the batch size: both read the same chunk stream.
    xs, batch_size, cuts = case
    serial = fill_histogram(Histogram("lat", BOUNDS, batch_size), xs)
    merged = merge_histograms(
        fill_histogram(
            Histogram("lat", BOUNDS, batch_size, offset=start), values
        )
        for start, values in segments(xs, cuts)
    )
    if not xs:
        with pytest.raises(ValueError):
            serial.percentile(q)
        with pytest.raises(ValueError):
            merged.percentile(q)
        return
    assert merged.percentile(q) == serial.percentile(q)
    assert merged.stream_values() == serial.stream_values()


@settings(max_examples=200, deadline=None)
@given(stream_and_cuts(), st.floats(min_value=0.0, max_value=1.0))
def test_unit_batch_percentiles_are_exact_order_statistics(case, q):
    # With batch_size=1 every observation survives verbatim in the
    # chunk stream (a one-value batch mean IS the value), so the
    # percentile is the exact empirical one however the stream was
    # split — this is what the live service's p50/p95/p99 rely on.
    xs, _, cuts = case
    merged = merge_histograms(
        fill_histogram(Histogram("lat", BOUNDS, 1, offset=start), values)
        for start, values in segments(xs, cuts)
    )
    if not xs:
        return
    assert merged.stream_values() == xs
    assert merged.percentile(q) == nearest_rank(xs, q)
