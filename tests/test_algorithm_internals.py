"""White-box tests of the algorithm constructions.

These pin the *internal* structure DESIGN.md documents: EDN's three
phases, DB's corner/pillar/row/column anatomy, and AB's control-field
usage — so a refactor that keeps coverage but breaks the construction
is caught.
"""

import pytest

from repro.core import (
    AdaptiveBroadcast,
    DeterministicBroadcast,
    ExtendedDominatingNodes,
    RecursiveDoubling,
)
from repro.network import ControlField, Mesh


# ----------------------------------------------------------------- EDN
def test_edn_phase_steps_partition_total():
    algo = ExtendedDominatingNodes(Mesh((16, 16, 8)))
    a, b, c = algo.phase_steps()
    assert (a, b, c) == (2, 3, 2)
    assert algo.step_count() == a + b + c


def test_edn_phase_a_stays_in_source_plane():
    mesh = Mesh((16, 16, 4))
    algo = ExtendedDominatingNodes(mesh)
    a_steps, _, _ = algo.phase_steps()
    schedule = algo.schedule((5, 9, 2))
    for step in schedule.steps[:a_steps]:
        for send in step.sends:
            assert send.source[2] == 2
            for node in send.deliveries:
                assert node[2] == 2, "phase A must not leave the source plane"


def test_edn_phase_b_moves_only_along_z():
    mesh = Mesh((8, 8, 8))
    algo = ExtendedDominatingNodes(mesh)
    a_steps, b_steps, _ = algo.phase_steps()
    schedule = algo.schedule((1, 1, 1))
    for step in schedule.steps[a_steps : a_steps + b_steps]:
        for send in step.sends:
            (dest,) = send.deliveries
            assert (send.source[0], send.source[1]) == (dest[0], dest[1])
            assert send.source[2] != dest[2]


def test_edn_phase_c_stays_inside_blocks():
    mesh = Mesh((8, 8, 4))
    algo = ExtendedDominatingNodes(mesh)
    a_steps, b_steps, _ = algo.phase_steps()
    schedule = algo.schedule((0, 0, 0))
    for step in schedule.steps[a_steps + b_steps :]:
        for send in step.sends:
            (dest,) = send.deliveries
            assert send.source[2] == dest[2]
            assert send.source[0] // 4 == dest[0] // 4
            assert send.source[1] // 4 == dest[1] // 4


# ------------------------------------------------------------------ DB
def test_db_step2_uses_replicating_control_field():
    schedule = DeterministicBroadcast(Mesh((4, 4, 4))).schedule((1, 1, 1))
    pillar_step = schedule.steps[1]
    for send in pillar_step.sends:
        assert send.control is ControlField.RECEIVE_AND_REPLICATE
        # Pillars run along z from the two mesh corners.
        assert (send.source[0], send.source[1]) in {(0, 0), (3, 3)}


def test_db_step3_covers_boundary_rows_only():
    mesh = Mesh((6, 6, 3))
    schedule = DeterministicBroadcast(mesh).schedule((2, 2, 1))
    row_step = schedule.steps[2]
    for send in row_step.sends:
        for node in send.deliveries:
            assert node[1] in (0, 5), "step 3 deliveries must sit on y-boundary rows"


def test_db_step4_fills_interior_columns():
    mesh = Mesh((6, 6, 3))
    schedule = DeterministicBroadcast(mesh).schedule((2, 2, 1))
    column_step = schedule.steps[3]
    for send in column_step.sends:
        assert send.source[1] in (0, 5)
        for node in send.deliveries:
            assert 1 <= node[1] <= 4


def test_db_interior_split_is_balanced():
    mesh = Mesh((4, 8, 2))
    schedule = DeterministicBroadcast(mesh).schedule((0, 0, 0))
    south = north = 0
    for send in schedule.steps[3].sends:
        if send.source[1] == 0:
            south += len(send.deliveries)
        else:
            north += len(send.deliveries)
    assert abs(south - north) <= mesh.dims[0] * mesh.dims[2]


# ------------------------------------------------------------------ AB
def test_ab_control_fields_follow_the_paper():
    """Step 1 worms carry 10, step 2 pillars carry 11 (paper §2)."""
    schedule = AdaptiveBroadcast(Mesh((8, 8, 4))).schedule((2, 2, 1))
    for send in schedule.steps[0].sends:
        assert send.control is ControlField.PASS_AND_RECEIVE  # 10
    for send in schedule.steps[1].sends:
        assert send.control is ControlField.RECEIVE_AND_REPLICATE  # 11


def test_ab_pillars_start_from_the_step1_corners():
    mesh = Mesh((8, 8, 4))
    schedule = AdaptiveBroadcast(mesh).schedule((1, 6, 2))
    step1_targets = {
        d for send in schedule.steps[0].sends for d in send.deliveries
    }
    pillar_sources = {send.source for send in schedule.steps[1].sends}
    assert pillar_sources <= step1_targets | {(1, 6, 2)}


def test_ab_step3_halves_split_by_rows():
    mesh = Mesh((6, 6, 2))
    schedule = AdaptiveBroadcast(mesh).schedule((1, 1, 0))
    half = mesh.dims[1] // 2
    for send in schedule.steps[2].sends:
        rows = {n[1] for n in send.deliveries}
        assert rows <= set(range(half)) or rows <= set(range(half, 6))


def test_ab_snake_covers_exactly_its_half():
    mesh = Mesh((4, 4, 1))
    schedule = AdaptiveBroadcast(mesh).schedule((0, 0, 0))
    step3 = schedule.steps[-1]
    covered = {n for send in step3.sends for n in send.deliveries}
    # Everything except the two corners and the source.
    corners_and_source = {(0, 0, 0), (3, 3, 0)}
    expected = {n for n in mesh.nodes()} - corners_and_source
    assert covered == expected


# ------------------------------------------------------------------ RD
def test_rd_covers_dimensions_in_order():
    mesh = Mesh((4, 4, 4))
    schedule = RecursiveDoubling(mesh).schedule((0, 0, 0))
    # Steps 1-2 move along x only, 3-4 along y, 5-6 along z.
    for index, axis in [(0, 0), (1, 0), (2, 1), (3, 1), (4, 2), (5, 2)]:
        for send in schedule.steps[index].sends:
            (dest,) = send.deliveries
            moved = [i for i in range(3) if dest[i] != send.source[i]]
            assert moved == [axis], (index, send.source, dest)


def test_rd_line_sends_shrink_within_dimension():
    """First halving jumps half the line, later ones shrink to 1 hop."""
    schedule = RecursiveDoubling(Mesh((8,))).schedule((0,))
    jumps_per_step = []
    for step in schedule.steps:
        jumps = [
            abs(next(iter(send.deliveries))[0] - send.source[0])
            for send in step.sends
        ]
        jumps_per_step.append(max(jumps))
    assert jumps_per_step == [4, 2, 1]
