"""Tests for the future-work topology broadcasts (torus, hypercube)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import UnitStepExecutor, validate_schedule
from repro.core.hypercube_broadcast import HypercubeBroadcast
from repro.core.torus_broadcast import TorusRingBroadcast
from repro.network import Hypercube, Mesh, NetworkConfig, Torus


# -------------------------------------------------------------- hypercube
def test_hypercube_broadcast_requires_hypercube():
    with pytest.raises(TypeError):
        HypercubeBroadcast(Mesh((4, 4)))


def test_hypercube_broadcast_step_count():
    assert HypercubeBroadcast(Hypercube(6)).step_count() == 6


@pytest.mark.parametrize("order", [1, 2, 3, 5, 7])
def test_hypercube_broadcast_valid(order):
    cube = Hypercube(order)
    algo = HypercubeBroadcast(cube)
    schedule = algo.schedule((0,) * order)
    validate_schedule(schedule, cube, algo.ports_required)
    assert schedule.num_steps == order


def test_hypercube_broadcast_doubles_each_step():
    cube = Hypercube(5)
    schedule = HypercubeBroadcast(cube).schedule((1, 0, 1, 0, 1))
    covered = 1
    for step in schedule.steps:
        assert len(step.sends) == covered
        covered *= 2
    assert covered == 32


def test_hypercube_broadcast_all_single_hop():
    schedule = HypercubeBroadcast(Hypercube(4)).schedule((0, 0, 0, 0))
    for _, send in schedule.all_sends():
        assert send.path.hop_count == 1


# ---------------------------------------------------------------- torus
def test_torus_broadcast_requires_torus():
    with pytest.raises(TypeError):
        TorusRingBroadcast(Mesh((4, 4)))


def test_torus_broadcast_step_count_is_dimensions():
    assert TorusRingBroadcast(Torus((8, 8, 8))).step_count() == 3
    assert TorusRingBroadcast(Torus((8, 8))).step_count() == 2
    assert TorusRingBroadcast(Torus((8, 1, 8))).step_count() == 2


@pytest.mark.parametrize("dims", [(4, 4), (5, 5), (4, 4, 4), (3, 5, 7), (2, 2)])
def test_torus_broadcast_valid(dims):
    torus = Torus(dims)
    algo = TorusRingBroadcast(torus)
    for source in [tuple(0 for _ in dims), tuple(d - 1 for d in dims)]:
        schedule = algo.schedule(source)
        validate_schedule(schedule, torus, algo.ports_required)


@given(
    dims=st.tuples(st.integers(2, 6), st.integers(2, 6)),
    data=st.data(),
)
@settings(max_examples=30, deadline=None)
def test_torus_broadcast_any_source(dims, data):
    source = data.draw(st.tuples(*[st.integers(0, d - 1) for d in dims]))
    torus = Torus(dims)
    algo = TorusRingBroadcast(torus)
    schedule = algo.schedule(source)
    validate_schedule(schedule, torus, algo.ports_required)
    assert schedule.num_steps == algo.step_count()


def test_torus_broadcast_fewer_steps_than_mesh_rd():
    """The wraparound pays off: n steps vs mesh RD's sum of logs."""
    from repro.core import RecursiveDoubling

    torus_steps = TorusRingBroadcast(Torus((8, 8, 8))).step_count()
    mesh_steps = RecursiveDoubling(Mesh((8, 8, 8))).step_count()
    assert torus_steps == 3 < mesh_steps == 9


def test_torus_broadcast_ring_paths_are_half_rings():
    torus = Torus((8, 8))
    schedule = TorusRingBroadcast(torus).schedule((0, 0))
    step1 = schedule.steps[0]
    assert len(step1.sends) == 2
    fanouts = sorted(send.fanout for send in step1.sends)
    assert fanouts == [3, 4]  # radix 8: halves of 7 remaining nodes


def test_torus_broadcast_low_cv():
    """Ring worms deliver whole dimensions per step → very tight arrivals."""
    torus = Torus((8, 8, 8))
    algo = TorusRingBroadcast(torus)
    outcome = UnitStepExecutor(torus, NetworkConfig(ports_per_node=2)).execute(
        algo.schedule((0, 0, 0)), length_flits=100
    )
    assert outcome.delivered_count == 511
    assert outcome.coefficient_of_variation < 0.25


def test_torus_broadcast_event_driven_execution():
    """Ring worms run to completion on the event simulator.

    Worms within one step ride disjoint rings (holders differ in every
    earlier dimension) and a holder's two worms use opposite channel
    directions, so a single broadcast is contention- and deadlock-free.
    """
    from repro.core import EventDrivenExecutor
    from repro.network import NetworkConfig, NetworkSimulator

    torus = Torus((4, 4, 4))
    algo = TorusRingBroadcast(torus)
    net = NetworkSimulator(torus, NetworkConfig(ports_per_node=2))
    outcome = EventDrivenExecutor(net).execute(algo.schedule((1, 2, 3)), 64)
    assert outcome.delivered_count == 63
    # Contention-free: event == analytic, exactly.
    analytic = UnitStepExecutor(torus, NetworkConfig(ports_per_node=2)).execute(
        algo.schedule((1, 2, 3)), 64
    )
    for node, t in analytic.arrivals.items():
        assert outcome.arrivals[node] == pytest.approx(t)
    for channel in net.channels.values():
        assert not channel.busy


def test_torus_broadcast_analytic_latency_beats_mesh_db():
    from repro.core import DeterministicBroadcast

    config = NetworkConfig(ports_per_node=2)
    torus = Torus((8, 8, 8))
    mesh = Mesh((8, 8, 8))
    torus_out = UnitStepExecutor(torus, config).execute(
        TorusRingBroadcast(torus).schedule((0, 0, 0)), length_flits=100
    )
    mesh_out = UnitStepExecutor(mesh, config).execute(
        DeterministicBroadcast(mesh).schedule((0, 0, 0)), length_flits=100
    )
    assert torus_out.network_latency < mesh_out.network_latency
