"""The tracing subsystem: spans, sinks, export, and the no-op contract.

Covers the promises `repro.obs.trace` documents — zero overhead when
disabled, injected clocks, crash-tolerant spool files — plus the
producer-side behaviours that ride on them: the lease heartbeat's
failure surfacing and the always-on kernel profile counters.
"""

import json
import tracemalloc

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    TRACE_SCHEMA,
    JsonlSink,
    ListSink,
    Tracer,
    export_chrome_trace,
    read_trace_dir,
    read_trace_file,
    summarize_trace,
    trace_dir_for,
    worker_trace_path,
)


class FakeClock:
    """Deterministic injected clock: each call advances by ``step``."""

    def __init__(self, start=100.0, step=0.5):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def tracer_with_sink(**kwargs):
    sink = ListSink()
    return Tracer(sink, clock=FakeClock(), pid=7, **kwargs), sink


# ------------------------------------------------------------- no-op path
def test_null_tracer_is_shared_and_allocation_free():
    # The disabled span handle is one shared object, not a fresh
    # context manager per call.
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b", cat="x", unit="u")
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.event("e", unit="u") is None
    assert NULL_TRACER.close() is None
    with NULL_TRACER.span("a") as span:
        assert span.set(extra=1) is span

    # Zero *retained* allocations across a producer-shaped loop: what
    # "tracing off costs a method call and nothing else" means.
    def produce():
        for i in range(1000):
            with NULL_TRACER.span("unit.execute", cat="unit", unit="h"):
                NULL_TRACER.event("lease.claim", unit="h", index=i)

    produce()  # warm up code objects, caches
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    produce()
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    growth = sum(
        d.size_diff for d in after.compare_to(before, "filename")
        if d.size_diff > 0 and "tracemalloc" not in str(d.traceback)
    )
    assert growth == 0


# ------------------------------------------------------------ live tracer
def test_tracer_records_meta_spans_events_and_nesting():
    tracer, sink = tracer_with_sink(role="pool")

    meta = sink.records[0]
    assert meta["type"] == "meta"
    assert meta["schema"] == TRACE_SCHEMA
    assert (meta["role"], meta["pid"]) == ("pool", 7)

    with tracer.span("campaign", cat="campaign", campaign="fig1") as outer:
        tracer.event("lease.claim", cat="lease", unit="abc")
        with tracer.span("unit.execute", cat="unit", unit="abc") as inner:
            inner.set(kind="broadcast")
        outer.set(units=1)

    events = [r for r in sink.records if r["type"] == "event"]
    spans = {r["name"]: r for r in sink.records if r["type"] == "span"}
    assert events[0]["parent"] == spans["campaign"]["id"]
    assert spans["unit.execute"]["parent"] == spans["campaign"]["id"]
    assert spans["campaign"]["parent"] is None
    assert spans["unit.execute"]["args"] == {"unit": "abc", "kind": "broadcast"}
    assert spans["campaign"]["args"] == {"campaign": "fig1", "units": 1}
    # Injected clock: timestamps are the fake's sequence, not wall time.
    assert spans["campaign"]["end_s"] > spans["campaign"]["start_s"] >= 100.0


def test_escaping_exception_stamps_error_and_closes_span():
    tracer, sink = tracer_with_sink()
    with pytest.raises(RuntimeError):
        with tracer.span("unit.execute", unit="abc"):
            raise RuntimeError("boom")
    span = [r for r in sink.records if r["type"] == "span"][0]
    assert span["args"]["error"] == "RuntimeError('boom')"
    assert span["end_s"] >= span["start_s"]


# ------------------------------------------------------- spool file layout
def test_jsonl_sink_round_trip_and_torn_lines(tmp_path):
    path = tmp_path / "spool" / "pool-7.jsonl"
    tracer = Tracer(JsonlSink(path), clock=FakeClock(), pid=7, role="pool")
    with tracer.span("campaign", cat="campaign"):
        tracer.event("cache.hit", cat="cache", unit="abc")
    tracer.close()

    # A killed process tears its final line; readers must skip it.
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"type": "span", "name": "torn')
    records = read_trace_file(path)
    assert [r["type"] for r in records] == ["meta", "event", "span"]

    # Directory readers stitch every per-process spool file.
    other = worker_trace_path(path.parent, "worker", 8)
    assert other.name == "worker-8.jsonl"
    Tracer(JsonlSink(other), clock=FakeClock(), pid=8, role="worker").close()
    assert len(read_trace_dir(path.parent)) == 4


def test_trace_dir_layout(tmp_path):
    directory_store = tmp_path / "fig1-quick-s0"
    directory_store.mkdir()
    assert trace_dir_for(directory_store) == directory_store / "traces"
    file_store = tmp_path / "fig1-quick-s0.sqlite"
    assert (
        trace_dir_for(file_store)
        == tmp_path / "fig1-quick-s0.sqlite.traces"
    )

    class StoreLike:
        path = file_store

    assert trace_dir_for(StoreLike()) == tmp_path / "fig1-quick-s0.sqlite.traces"


# --------------------------------------------------------------- exporters
def test_export_chrome_trace_shapes(tmp_path):
    tracer, sink = tracer_with_sink(role="pool")
    with tracer.span("campaign", cat="campaign"):
        tracer.event("lease.claim", cat="lease", unit="abc")

    out = tmp_path / "trace.json"
    document = export_chrome_trace(sink.records, out)
    loaded = json.loads(out.read_text(encoding="utf-8"))
    assert loaded == document

    by_phase = {}
    for event in document["traceEvents"]:
        by_phase.setdefault(event["ph"], []).append(event)
    (meta,) = by_phase["M"]
    assert meta["args"]["name"] == "pool/7"
    (span,) = by_phase["X"]
    assert span["name"] == "campaign"
    assert span["dur"] > 0
    (instant,) = by_phase["i"]
    assert instant["s"] == "p"
    # Timestamps are re-based to the earliest record (µs from start).
    assert min(e["ts"] for e in by_phase["X"] + by_phase["i"]) >= 0.0

    assert export_chrome_trace([]) == {
        "traceEvents": [],
        "displayTimeUnit": "ms",
    }


def test_summarize_trace_units_and_queueing():
    clock = FakeClock(start=0.0, step=1.0)
    sink = ListSink()
    tracer = Tracer(sink, clock=clock, pid=7, role="pool")
    tracer.event("lease.claim", cat="lease", unit="abc")   # t=1
    with tracer.span("unit.execute", cat="unit", unit="abc"):  # t=2..3
        pass
    with tracer.span("unit.merge", cat="unit", unit="abc", shards=2):
        pass

    summary = summarize_trace(sink.records)
    assert summary["spans"] == 2
    assert summary["events"] == 1
    assert summary["processes"] == {7: "pool"}
    unit = summary["units"]["abc"]
    assert unit["spans"]["unit.execute"] == 1.0
    assert unit["spans"]["unit.merge"] == 1.0
    assert unit["queued_s"] == 1.0  # claimed t=1, execute started t=2
    assert summary["wall_s"] > 0
